// Package metrics records the simulation event timeline: executor
// registrations, task and stage spans, segue commencement, and job
// boundaries. Figure 7 of the paper — per-scenario execution timelines with
// executor start markers and the segue instant — is rendered from this log.
//
// Since the telemetry refactor the Log is a *view builder* over the span
// tracer in internal/telemetry: every Add bridges the event into spans and
// marks on the Log's Hub, and TaskSpans/StageSpans/RenderTimeline read the
// tracer back. There is no parallel bookkeeping path — the Figure-7
// timeline and the -report exports are two projections of one trace.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"splitserve/internal/eventlog"
	"splitserve/internal/telemetry"
)

// Kind enumerates event types.
type Kind string

// Event kinds.
const (
	JobStart           Kind = "job_start"
	JobEnd             Kind = "job_end"
	StageStart         Kind = "stage_start"
	StageEnd           Kind = "stage_end"
	TaskStart          Kind = "task_start"
	TaskEnd            Kind = "task_end"
	TaskFailed         Kind = "task_failed"
	ExecutorRegistered Kind = "executor_registered"
	ExecutorRemoved    Kind = "executor_removed"
	ExecutorDraining   Kind = "executor_draining"
	SegueCommence      Kind = "segue_commence"
	VMRequested        Kind = "vm_requested"
	VMReady            Kind = "vm_ready"
	StageResubmitted   Kind = "stage_resubmitted"
	TaskSpeculated     Kind = "task_speculated"
)

// String returns the kind's wire name.
func (k Kind) String() string { return string(k) }

// Valid reports whether k is a known event kind.
func (k Kind) Valid() bool {
	switch k {
	case JobStart, JobEnd, StageStart, StageEnd, TaskStart, TaskEnd,
		TaskFailed, ExecutorRegistered, ExecutorRemoved, ExecutorDraining,
		SegueCommence, VMRequested, VMReady, StageResubmitted, TaskSpeculated:
		return true
	}
	return false
}

// Event is one timeline entry.
type Event struct {
	At       time.Time
	Kind     Kind
	Exec     string // executor ID if applicable
	ExecKind string // "vm" or "lambda"
	Stage    int    // -1 if n/a
	Task     int    // -1 if n/a
	Note     string
}

// Log is an append-only event log bridging into a telemetry Hub.
// The zero value is unusable; call New or NewWithTelemetry.
type Log struct {
	start    time.Time
	hub      *telemetry.Hub
	app      string
	events   []Event
	end      time.Time // latest event instant, for clamping open spans
	bus      *eventlog.Bus
	eventApp string

	openTasks  map[taskKey]*telemetry.Span
	openStages map[int]*telemetry.Span
	openJobs   map[string]*telemetry.Span
	openExecs  map[string]*telemetry.Span
	openDrains map[string]*telemetry.Span
}

type taskKey struct {
	exec  string
	stage int
	task  int
}

// New returns a Log whose relative timestamps are measured from start. It
// owns a private telemetry Hub; use NewWithTelemetry to share one with the
// rest of the stack.
func New(start time.Time) *Log {
	return NewWithTelemetry(start, telemetry.New(telemetry.StaticClock(start)))
}

// NewWithTelemetry returns a Log that bridges its events into hub's
// tracer. Events carry explicit timestamps, so the hub's clock is never
// consulted by the Log itself.
func NewWithTelemetry(start time.Time, hub *telemetry.Hub) *Log {
	if hub == nil {
		hub = telemetry.New(telemetry.StaticClock(start))
	}
	return &Log{
		start:      start,
		hub:        hub,
		end:        start,
		openTasks:  make(map[taskKey]*telemetry.Span),
		openStages: make(map[int]*telemetry.Span),
		openJobs:   make(map[string]*telemetry.Span),
		openExecs:  make(map[string]*telemetry.Span),
		openDrains: make(map[string]*telemetry.Span),
	}
}

// Start returns the log's origin instant.
func (l *Log) Start() time.Time { return l.start }

// Telemetry returns the hub this log bridges into.
func (l *Log) Telemetry() *telemetry.Hub { return l.hub }

// SetApp labels every span and mark this log bridges with app, and scopes
// TaskSpans/StageSpans/RenderTimeline to that app. Required when several
// engine clusters share one telemetry hub (the cluster layer): without
// the label, two concurrent jobs that both run "stage 0" would collide in
// the shared tracer and bleed into each other's timelines.
func (l *Log) SetApp(app string) { l.app = app }

// App returns the log's app scope ("" = unscoped).
func (l *Log) App() string { return l.app }

// SetEventLog mirrors every subsequent Add into bus as structured eventlog
// events stamped app. The app name is explicit (not taken from SetApp)
// because event-log scoping is orthogonal to span labeling: a single-job
// sim wants app-tagged events without growing app labels on its spans,
// which would change existing report bytes.
func (l *Log) SetEventLog(bus *eventlog.Bus, app string) {
	l.bus = bus
	l.eventApp = app
}

// attrs appends the app label (when set) to a span's base attributes.
func (l *Log) attrs(base ...telemetry.Label) []telemetry.Label {
	if l.app == "" {
		return base
	}
	return append(base, telemetry.L("app", l.app))
}

// scoped reports whether a tracer span belongs to this log's app scope.
func (l *Log) scoped(app string) bool { return l.app == "" || app == l.app }

// Add appends an event and mirrors it into the tracer. Unknown kinds are
// rejected with an error and not recorded (guards against typo'd event
// names as call sites multiply).
func (l *Log) Add(e Event) error {
	if !e.Kind.Valid() {
		return fmt.Errorf("metrics: unknown event kind %q", string(e.Kind))
	}
	l.events = append(l.events, e)
	if e.At.After(l.end) {
		l.end = e.At
	}
	l.bridge(e)
	l.emitEvent(e)
	return nil
}

// kindToEventType maps timeline kinds onto the eventlog vocabulary.
var kindToEventType = map[Kind]eventlog.Type{
	JobStart:           eventlog.JobStart,
	JobEnd:             eventlog.JobEnd,
	StageStart:         eventlog.StageStart,
	StageEnd:           eventlog.StageEnd,
	TaskStart:          eventlog.TaskStart,
	TaskEnd:            eventlog.TaskEnd,
	TaskFailed:         eventlog.TaskFailed,
	ExecutorRegistered: eventlog.ExecutorAdd,
	ExecutorDraining:   eventlog.ExecutorDrain,
	ExecutorRemoved:    eventlog.ExecutorRemove,
	SegueCommence:      eventlog.Segue,
	VMRequested:        eventlog.VMRequest,
	VMReady:            eventlog.VMReady,
	StageResubmitted:   eventlog.StageResubmitted,
	TaskSpeculated:     eventlog.TaskSpeculated,
}

// emitEvent forwards one timeline event to the event-log bus (no-op when
// no bus is attached).
func (l *Log) emitEvent(e Event) {
	if l.bus == nil {
		return
	}
	t, ok := kindToEventType[e.Kind]
	if !ok {
		return
	}
	ev := eventlog.Ev(t)
	ev.App = l.eventApp
	ev.Exec = e.Exec
	ev.Kind = e.ExecKind
	ev.Stage = e.Stage
	ev.Task = e.Task
	ev.Note = e.Note
	if e.Kind == ExecutorRegistered {
		ev.Cores = 1 // executors are one core each, as in the paper
	}
	l.bus.Emit(e.At, ev)
}

// bridge translates one event into tracer spans and marks.
func (l *Log) bridge(e Event) {
	tr := l.hub.Tracer()
	switch e.Kind {
	case JobStart:
		l.openJobs[e.Note] = tr.StartSpanAt(e.At, "job", "run", l.attrs(telemetry.L("job", e.Note))...)
	case JobEnd:
		if s, ok := l.openJobs[e.Note]; ok {
			s.EndAt(e.At)
			delete(l.openJobs, e.Note)
		}
	case StageStart:
		l.openStages[e.Stage] = tr.StartSpanAt(e.At, "stage", "run",
			l.attrs(telemetry.L("stage", strconv.Itoa(e.Stage)))...)
	case StageEnd:
		if s, ok := l.openStages[e.Stage]; ok {
			s.EndAt(e.At)
			delete(l.openStages, e.Stage)
		}
	case TaskStart:
		k := taskKey{e.Exec, e.Stage, e.Task}
		l.openTasks[k] = tr.StartSpanAt(e.At, "task", "run",
			l.attrs(
				telemetry.L("exec", e.Exec),
				telemetry.L("kind", e.ExecKind),
				telemetry.L("stage", strconv.Itoa(e.Stage)),
				telemetry.L("task", strconv.Itoa(e.Task)))...)
	case TaskEnd, TaskFailed:
		k := taskKey{e.Exec, e.Stage, e.Task}
		if s, ok := l.openTasks[k]; ok {
			s.EndAt(e.At)
			delete(l.openTasks, k)
		}
	case ExecutorRegistered:
		l.openExecs[e.Exec] = tr.StartSpanAt(e.At, "executor", "lifetime",
			l.attrs(telemetry.L("exec", e.Exec), telemetry.L("kind", e.ExecKind))...)
	case ExecutorDraining:
		l.openDrains[e.Exec] = tr.StartSpanAt(e.At, "executor", "drain",
			l.attrs(telemetry.L("exec", e.Exec), telemetry.L("kind", e.ExecKind))...)
	case ExecutorRemoved:
		if s, ok := l.openDrains[e.Exec]; ok {
			s.EndAt(e.At)
			delete(l.openDrains, e.Exec)
		}
		if s, ok := l.openExecs[e.Exec]; ok {
			s.EndAt(e.At)
			delete(l.openExecs, e.Exec)
		}
	case SegueCommence, VMRequested, VMReady, StageResubmitted, TaskSpeculated:
		attrs := make([]telemetry.Label, 0, 3)
		if e.Exec != "" {
			attrs = append(attrs, telemetry.L("exec", e.Exec))
		}
		if e.Stage >= 0 {
			attrs = append(attrs, telemetry.L("stage", strconv.Itoa(e.Stage)))
		}
		if e.Task >= 0 {
			attrs = append(attrs, telemetry.L("task", strconv.Itoa(e.Task)))
		}
		tr.MarkAt(e.At, "timeline", string(e.Kind), l.attrs(attrs...)...)
	}
}

// Events returns a copy of all events in insertion order.
func (l *Log) Events() []Event { return append([]Event(nil), l.events...) }

// ByKind returns the events of one kind.
func (l *Log) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Rel returns t as an offset from the log start.
func (l *Log) Rel(t time.Time) time.Duration { return t.Sub(l.start) }

// End returns the instant of the latest event recorded so far (the log
// start if no events have been added).
func (l *Log) End() time.Time { return l.end }

// Span is one task execution on one executor. Open marks a task that
// started but never finished (e.g. its Lambda drained mid-run); its End
// is clamped to the log end.
type Span struct {
	Exec     string
	ExecKind string
	Stage    int
	Task     int
	Start    time.Time
	End      time.Time
	Open     bool
}

// TaskSpans projects the tracer's task spans, ordered by start time then
// executor. Tasks with a task_start but no matching end are emitted as
// open spans clamped to the log end, so drained-Lambda tasks still
// render.
func (l *Log) TaskSpans() []Span {
	var spans []Span
	for _, s := range l.hub.Tracer().Spans() {
		if s.Component != "task" || s.Name != "run" || !l.scoped(s.Attr("app")) {
			continue
		}
		stage, _ := strconv.Atoi(s.Attr("stage"))
		task, _ := strconv.Atoi(s.Attr("task"))
		sp := Span{
			Exec:     s.Attr("exec"),
			ExecKind: s.Attr("kind"),
			Stage:    stage,
			Task:     task,
			Start:    s.Start,
		}
		if s.Open {
			sp.End = l.end
			sp.Open = true
		} else {
			sp.End = s.Finish
		}
		spans = append(spans, sp)
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Exec < spans[j].Exec
	})
	return spans
}

// StageSpan is one stage's (start, end) interval.
type StageSpan struct {
	Stage int
	Start time.Time
	End   time.Time
}

// StageSpans projects the tracer's completed stage spans.
func (l *Log) StageSpans() []StageSpan {
	var out []StageSpan
	for _, s := range l.hub.Tracer().Spans() {
		if s.Component != "stage" || s.Name != "run" || s.Open || !l.scoped(s.Attr("app")) {
			continue
		}
		stage, _ := strconv.Atoi(s.Attr("stage"))
		out = append(out, StageSpan{Stage: stage, Start: s.Start, End: s.Finish})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// RenderTimeline draws an ASCII per-executor timeline of task activity
// (Figure 7 style): one row per executor, '#' where a task is running,
// '|' at segue commencement, executor rows ordered by registration. A
// header tick row marks segue ('S') and VM-ready ('V') columns
// unconditionally, so those instants stay visible even when every
// executor row is dense with task activity.
func (l *Log) RenderTimeline(width int) string {
	if width <= 10 {
		width = 80
	}
	spans := l.TaskSpans()
	if len(spans) == 0 {
		return "(no task activity)\n"
	}
	end := l.start
	for _, s := range spans {
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(l.start)
	if total <= 0 {
		return "(zero-length timeline)\n"
	}
	col := func(t time.Time) int {
		c := int(float64(t.Sub(l.start)) / float64(total) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var execs []string
	seen := map[string]string{}
	for _, e := range l.ByKind(ExecutorRegistered) {
		if _, ok := seen[e.Exec]; !ok {
			seen[e.Exec] = e.ExecKind
			execs = append(execs, e.Exec)
		}
	}
	rows := make(map[string][]byte, len(execs))
	for _, id := range execs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[id] = row
	}
	for _, s := range spans {
		row, ok := rows[s.Exec]
		if !ok {
			continue
		}
		a, b := col(s.Start), col(s.End)
		for i := a; i <= b; i++ {
			row[i] = '#'
		}
	}
	tick := make([]byte, width)
	for i := range tick {
		tick[i] = ' '
	}
	for _, e := range l.ByKind(SegueCommence) {
		c := col(e.At)
		tick[c] = 'S'
		for _, row := range rows {
			if row[c] == '.' {
				row[c] = '|'
			}
		}
	}
	for _, e := range l.ByKind(VMReady) {
		if c := col(e.At); tick[c] == ' ' {
			tick[c] = 'V'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0s .. %.1fs  ('#'=task running, '|'=segue; header: S=segue, V=vm-ready)\n", total.Seconds())
	fmt.Fprintf(&b, "%-22s %s\n", "", tick)
	for _, id := range execs {
		fmt.Fprintf(&b, "%-22s %s\n", id+" ["+seen[id]+"]", rows[id])
	}
	return b.String()
}
