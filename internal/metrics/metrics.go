// Package metrics records the simulation event timeline: executor
// registrations, task and stage spans, segue commencement, and job
// boundaries. Figure 7 of the paper — per-scenario execution timelines with
// executor start markers and the segue instant — is rendered from this log.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind enumerates event types.
type Kind string

// Event kinds.
const (
	JobStart           Kind = "job_start"
	JobEnd             Kind = "job_end"
	StageStart         Kind = "stage_start"
	StageEnd           Kind = "stage_end"
	TaskStart          Kind = "task_start"
	TaskEnd            Kind = "task_end"
	TaskFailed         Kind = "task_failed"
	ExecutorRegistered Kind = "executor_registered"
	ExecutorRemoved    Kind = "executor_removed"
	ExecutorDraining   Kind = "executor_draining"
	SegueCommence      Kind = "segue_commence"
	VMRequested        Kind = "vm_requested"
	VMReady            Kind = "vm_ready"
	StageResubmitted   Kind = "stage_resubmitted"
	TaskSpeculated     Kind = "task_speculated"
)

// Event is one timeline entry.
type Event struct {
	At       time.Time
	Kind     Kind
	Exec     string // executor ID if applicable
	ExecKind string // "vm" or "lambda"
	Stage    int    // -1 if n/a
	Task     int    // -1 if n/a
	Note     string
}

// Log is an append-only event log. The zero value is unusable; call New.
type Log struct {
	start  time.Time
	events []Event
}

// New returns a Log whose relative timestamps are measured from start.
func New(start time.Time) *Log { return &Log{start: start} }

// Start returns the log's origin instant.
func (l *Log) Start() time.Time { return l.start }

// Add appends an event.
func (l *Log) Add(e Event) { l.events = append(l.events, e) }

// Events returns a copy of all events in insertion order.
func (l *Log) Events() []Event { return append([]Event(nil), l.events...) }

// ByKind returns the events of one kind.
func (l *Log) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Rel returns t as an offset from the log start.
func (l *Log) Rel(t time.Time) time.Duration { return t.Sub(l.start) }

// Span is one task execution on one executor.
type Span struct {
	Exec     string
	ExecKind string
	Stage    int
	Task     int
	Start    time.Time
	End      time.Time
}

// TaskSpans pairs task_start/task_end events into spans, ordered by start
// time then executor.
func (l *Log) TaskSpans() []Span {
	type key struct {
		exec  string
		stage int
		task  int
	}
	open := map[key]Event{}
	var spans []Span
	for _, e := range l.events {
		k := key{e.Exec, e.Stage, e.Task}
		switch e.Kind {
		case TaskStart:
			open[k] = e
		case TaskEnd, TaskFailed:
			if s, ok := open[k]; ok {
				spans = append(spans, Span{
					Exec: e.Exec, ExecKind: s.ExecKind,
					Stage: e.Stage, Task: e.Task,
					Start: s.At, End: e.At,
				})
				delete(open, k)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Exec < spans[j].Exec
	})
	return spans
}

// StageBoundaries returns (stage, start, end) triples.
type StageSpan struct {
	Stage int
	Start time.Time
	End   time.Time
}

// StageSpans pairs stage start/end events.
func (l *Log) StageSpans() []StageSpan {
	open := map[int]time.Time{}
	var out []StageSpan
	for _, e := range l.events {
		switch e.Kind {
		case StageStart:
			open[e.Stage] = e.At
		case StageEnd:
			if s, ok := open[e.Stage]; ok {
				out = append(out, StageSpan{Stage: e.Stage, Start: s, End: e.At})
				delete(open, e.Stage)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// RenderTimeline draws an ASCII per-executor timeline of task activity
// (Figure 7 style): one row per executor, '#' where a task is running,
// '|' at segue commencement, executor rows ordered by registration.
func (l *Log) RenderTimeline(width int) string {
	if width <= 10 {
		width = 80
	}
	spans := l.TaskSpans()
	if len(spans) == 0 {
		return "(no task activity)\n"
	}
	end := l.start
	for _, s := range spans {
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(l.start)
	if total <= 0 {
		return "(zero-length timeline)\n"
	}
	col := func(t time.Time) int {
		c := int(float64(t.Sub(l.start)) / float64(total) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var execs []string
	seen := map[string]string{}
	for _, e := range l.ByKind(ExecutorRegistered) {
		if _, ok := seen[e.Exec]; !ok {
			seen[e.Exec] = e.ExecKind
			execs = append(execs, e.Exec)
		}
	}
	rows := make(map[string][]byte, len(execs))
	for _, id := range execs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[id] = row
	}
	for _, s := range spans {
		row, ok := rows[s.Exec]
		if !ok {
			continue
		}
		a, b := col(s.Start), col(s.End)
		for i := a; i <= b; i++ {
			row[i] = '#'
		}
	}
	for _, e := range l.ByKind(SegueCommence) {
		c := col(e.At)
		for _, row := range rows {
			if row[c] == '.' {
				row[c] = '|'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0s .. %.1fs  ('#'=task running, '|'=segue)\n", total.Seconds())
	for _, id := range execs {
		fmt.Fprintf(&b, "%-22s %s\n", id+" ["+seen[id]+"]", rows[id])
	}
	return b.String()
}
