// Command splitserve-profile reproduces the paper's offline workload
// profiling (Section 5.1, Figure 4): execution time and cost of PageRank
// versus degree of parallelism on all-Lambda or all-VM executors, the
// curves a cost manager consults to pick a job's core count.
//
//	splitserve-profile -substrate lambda
//	splitserve-profile -substrate vm -pages 50000 -iterations 3
//	splitserve-profile -report json
//
// With -out it instead profiles the cluster mix workloads on both
// substrates and writes the versioned costmgr profile file that
// `splitserve-cluster -cores auto` consumes:
//
//	splitserve-profile -out profiles.json
//	splitserve-profile -out profiles.json -workloads sparkpi,kmeans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"splitserve/internal/cliutil"
	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
	"splitserve/internal/experiments"
	"splitserve/internal/simclock"
	"splitserve/internal/workloads/pagerank"
)

// profilePoint is one {dataset, parallelism} sweep sample in -report json.
type profilePoint struct {
	Pages       int     `json:"pages"`
	Parallelism int     `json:"parallelism"`
	ExecTimeUS  int64   `json:"exec_time_us"`
	CostUSD     float64 `json:"cost_usd"`
	Optimal     bool    `json:"optimal"`
}

type profileReport struct {
	Substrate  string         `json:"substrate"`
	Iterations int            `json:"iterations"`
	Seed       uint64         `json:"seed"`
	Points     []profilePoint `json:"points"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		substrate  = flag.String("substrate", "lambda", "executor substrate: lambda or vm")
		pages      = flag.Int("pages", 0, "profile a single dataset size (0 = the paper's 25k/50k/100k sweep)")
		iterations = flag.Int("iterations", 3, "PageRank iterations")
		maxPar     = flag.Int("max-parallelism", 128, "largest degree of parallelism (powers of two from 1)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		report     = flag.String("report", "", "emit the profile as a machine-readable report: json | prom")
		out        = flag.String("out", "", "write a costmgr profile file for the cluster mix workloads (skips the Figure 4 sweep)")
		workloadsF = flag.String("workloads", "", "comma-separated mix workloads to profile with -out (default: all)")
		eventLog   = flag.String("eventlog", "", cliutil.EventLogUsage)
		trace      = flag.String("trace", "", cliutil.TraceUsage)
	)
	perf := cliutil.RegisterPerfFlags(nil)
	flag.Parse()

	prof, err := perf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 2
	}
	defer perf.Stop()
	// Sweep samples run through experiments.Run, which picks the collector
	// up from the package-level hook.
	experiments.SetProfiler(prof)
	writePerf := func() int {
		if err := perf.WriteSnapshot(prof); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
			return 1
		}
		return 0
	}

	if *out != "" {
		if code := runProfileOut(*out, *workloadsF, *seed, *eventLog, *trace); code != 0 {
			return code
		}
		return writePerf()
	}
	if *workloadsF != "" {
		fmt.Fprintln(os.Stderr, "splitserve-profile: -workloads only applies with -out")
		return 2
	}

	lambda := *substrate == "lambda"
	if !lambda && *substrate != "vm" {
		fmt.Fprintln(os.Stderr, "splitserve-profile: -substrate must be lambda or vm")
		return 2
	}
	if err := cliutil.ValidateReport(*report); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 2
	}

	// One shared bus across the whole sweep; each sample gets a distinct
	// app ID so the runs land on separate tracks in the trace.
	var bus *eventlog.Bus
	if *eventLog != "" || *trace != "" {
		bus = eventlog.NewBus(simclock.Epoch)
	}

	sizes := []int{25_000, 50_000, 100_000}
	if *pages > 0 {
		sizes = []int{*pages}
	}

	human := *report == ""
	if human {
		fmt.Printf("PageRank profiling on all-%s executors (paper Figure 4%s)\n",
			*substrate, map[bool]string{true: "a", false: "b"}[lambda])
		fmt.Printf("%8s %12s %12s %12s %12s\n", "pages", "parallelism", "exec time", "cost USD", "$/run-vs-min")
	}
	var all []profilePoint
	for _, size := range sizes {
		var pts []experiments.ProfilePoint
		for par := 1; par <= *maxPar; par *= 2 {
			cfg := pagerank.DefaultConfig()
			cfg.Pages = size
			cfg.Partitions = par
			cfg.Iterations = *iterations
			cfg.Seed = *seed
			kind := experiments.SSFullVM
			if lambda {
				kind = experiments.SSLambda
			}
			workerType, _ := cloud.SmallestFor(par)
			res, err := experiments.Run(experiments.Scenario{
				Kind: kind, R: par, SmallR: par,
				WorkerVMType: workerType,
				MasterVMType: cloud.M4XLarge,
				Seed:         *seed,
				Events:       bus,
				AppID:        fmt.Sprintf("pagerank-%d-x%d", size, par),
			}, pagerank.New(cfg))
			if err != nil {
				fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
				return 1
			}
			pts = append(pts, experiments.ProfilePoint{
				Pages: size, Parallelism: par,
				ExecTime: res.ExecTime, CostUSD: res.CostUSD,
			})
		}
		best := pts[0].ExecTime
		for _, p := range pts {
			if p.ExecTime < best {
				best = p.ExecTime
			}
		}
		for _, p := range pts {
			all = append(all, profilePoint{
				Pages: p.Pages, Parallelism: p.Parallelism,
				ExecTimeUS: p.ExecTime.Microseconds(), CostUSD: p.CostUSD,
				Optimal: p.ExecTime == best,
			})
			if !human {
				continue
			}
			marker := ""
			if p.ExecTime == best {
				marker = "  <- performance-optimal parallelism"
			}
			fmt.Printf("%8d %12d %12.1fs %12.4f %11.2fx%s\n",
				p.Pages, p.Parallelism, p.ExecTime.Seconds(), p.CostUSD,
				p.ExecTime.Seconds()/best.Seconds(), marker)
		}
		if human {
			fmt.Println()
		}
	}

	if err := cliutil.WriteEventLog(*eventLog, bus.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	if err := cliutil.WriteTrace(*trace, bus.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}

	switch *report {
	case "json":
		buf, err := json.MarshalIndent(profileReport{
			Substrate: *substrate, Iterations: *iterations, Seed: *seed, Points: all,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
			return 1
		}
		os.Stdout.Write(buf)
		fmt.Println()
	case "prom":
		writeProm(os.Stdout, *substrate, all)
	}
	return writePerf()
}

// runProfileOut profiles the cluster mix workloads on both substrates
// and writes the versioned costmgr profile file -cores auto consumes.
func runProfileOut(path, workloadSpec string, seed uint64, eventLog, trace string) int {
	var names []string
	for _, n := range strings.Split(workloadSpec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	var bus *eventlog.Bus
	if eventLog != "" || trace != "" {
		bus = eventlog.NewBus(simclock.Epoch)
	}
	f, err := experiments.BuildProfileFile(seed, names, nil, bus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	buf, err := f.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	if err := cliutil.WriteEventLog(eventLog, bus.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	if err := cliutil.WriteTrace(trace, bus.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
		return 1
	}
	points := 0
	for _, c := range f.Curves {
		points += len(c.Points)
	}
	fmt.Printf("wrote %s: %d curves, %d points (seed %d)\n", path, len(f.Curves), points, f.Seed)
	return 0
}

// writeProm renders the sweep as Prometheus gauges, one series per
// {pages, parallelism} sample.
func writeProm(w *os.File, substrate string, pts []profilePoint) {
	fmt.Fprintln(w, "# TYPE splitserve_profile_exec_time_seconds gauge")
	for _, p := range pts {
		fmt.Fprintf(w, "splitserve_profile_exec_time_seconds{substrate=%q,pages=\"%d\",parallelism=\"%d\"} %g\n",
			substrate, p.Pages, p.Parallelism, float64(p.ExecTimeUS)/1e6)
	}
	fmt.Fprintln(w, "# TYPE splitserve_profile_cost_usd gauge")
	for _, p := range pts {
		fmt.Fprintf(w, "splitserve_profile_cost_usd{substrate=%q,pages=\"%d\",parallelism=\"%d\"} %g\n",
			substrate, p.Pages, p.Parallelism, p.CostUSD)
	}
}
