// Command splitserve-profile reproduces the paper's offline workload
// profiling (Section 5.1, Figure 4): execution time and cost of PageRank
// versus degree of parallelism on all-Lambda or all-VM executors, the
// curves a cost manager consults to pick a job's core count.
//
//	splitserve-profile -substrate lambda
//	splitserve-profile -substrate vm -pages 50000 -iterations 3
package main

import (
	"flag"
	"fmt"
	"os"

	"splitserve/internal/cloud"
	"splitserve/internal/experiments"
	"splitserve/internal/workloads/pagerank"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		substrate  = flag.String("substrate", "lambda", "executor substrate: lambda or vm")
		pages      = flag.Int("pages", 0, "profile a single dataset size (0 = the paper's 25k/50k/100k sweep)")
		iterations = flag.Int("iterations", 3, "PageRank iterations")
		maxPar     = flag.Int("max-parallelism", 128, "largest degree of parallelism (powers of two from 1)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	lambda := *substrate == "lambda"
	if !lambda && *substrate != "vm" {
		fmt.Fprintln(os.Stderr, "splitserve-profile: -substrate must be lambda or vm")
		return 2
	}

	sizes := []int{25_000, 50_000, 100_000}
	if *pages > 0 {
		sizes = []int{*pages}
	}

	fmt.Printf("PageRank profiling on all-%s executors (paper Figure 4%s)\n",
		*substrate, map[bool]string{true: "a", false: "b"}[lambda])
	fmt.Printf("%8s %12s %12s %12s %12s\n", "pages", "parallelism", "exec time", "cost USD", "$/run-vs-min")
	for _, size := range sizes {
		var pts []experiments.ProfilePoint
		for par := 1; par <= *maxPar; par *= 2 {
			cfg := pagerank.DefaultConfig()
			cfg.Pages = size
			cfg.Partitions = par
			cfg.Iterations = *iterations
			cfg.Seed = *seed
			kind := experiments.SSFullVM
			if lambda {
				kind = experiments.SSLambda
			}
			workerType, _ := cloud.SmallestFor(par)
			res, err := experiments.Run(experiments.Scenario{
				Kind: kind, R: par, SmallR: par,
				WorkerVMType: workerType,
				MasterVMType: cloud.M4XLarge,
				Seed:         *seed,
			}, pagerank.New(cfg))
			if err != nil {
				fmt.Fprintln(os.Stderr, "splitserve-profile:", err)
				return 1
			}
			pts = append(pts, experiments.ProfilePoint{
				Pages: size, Parallelism: par,
				ExecTime: res.ExecTime, CostUSD: res.CostUSD,
			})
		}
		best := pts[0].ExecTime
		for _, p := range pts {
			if p.ExecTime < best {
				best = p.ExecTime
			}
		}
		for _, p := range pts {
			marker := ""
			if p.ExecTime == best {
				marker = "  <- performance-optimal parallelism"
			}
			fmt.Printf("%8d %12d %12.1fs %12.4f %11.2fx%s\n",
				p.Pages, p.Parallelism, p.ExecTime.Seconds(), p.CostUSD,
				p.ExecTime.Seconds()/best.Seconds(), marker)
		}
		fmt.Println()
	}
	return 0
}
