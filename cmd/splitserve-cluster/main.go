// Command splitserve-cluster runs the multi-job cluster scheduler: a
// stream of real task-graph jobs (Poisson, uniform, bursty, explicit
// trace or CSV tracefile arrivals) against one shared VM pool, with
// pluggable sharing policies and the paper's three shortfall strategies:
//
//	splitserve-cluster -jobs 12 -arrival poisson:45s -policy fair -strategy bridge
//	splitserve-cluster -mix sparkpi,tpcds -pool 32 -slo 1.3 -report json
//	splitserve-cluster -cores auto -profiles profiles.json -alloc min-cost
//	splitserve-cluster -warmpool 4 -tmpcache -mix shufflereuse
//	splitserve-cluster -warmsweep
//	splitserve-cluster -compare
//	splitserve-cluster -shards 4 -tenants 6 -jobs 40
//	splitserve-cluster -arrival tracefile:trace.csv -shards 4 -validate
//	splitserve-cluster -shardsweep
//
// With -cores auto the cost manager sizes each arriving job from the
// profile curves written by `splitserve-profile -out` instead of taking
// a fixed R. Same seed, same flags → byte-identical -report json output.
//
// Multi-tenant runs go through the sharded control plane: -tenants N
// labels the stream round-robin, a tracefile TENANT column labels it per
// row, and a production-shaped 4-column trace (tenant,arrival,runtime,
// cores — see internal/tracereplay) is replayed wholesale, with -validate
// checking the replay against the trace's per-tenant distributions.
// -shards N partitions the pool across N scheduler instances by tenant
// hash, with work-stealing between them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"splitserve/internal/cliutil"
	"splitserve/internal/cluster"
	"splitserve/internal/costmgr"
	"splitserve/internal/experiments"
	"splitserve/internal/perfstat"
	"splitserve/internal/shard"
	"splitserve/internal/tracereplay"
	"splitserve/internal/workloads"
)

func mixNames() string { return strings.Join(experiments.MixNames(), ", ") }

// parseMix resolves a comma-separated workload mix against the
// experiments mix factories.
func parseMix(spec string) ([]string, error) {
	var out []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := experiments.MixWorkload(name); !ok {
			return nil, fmt.Errorf("unknown workload %q in -mix (accepted: %s)", name, mixNames())
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -mix (accepted: %s)", mixNames())
	}
	return out, nil
}

// buildSpecs calibrates one baseline per (mix entry, core count) and
// assembles the round-robin job stream. cores[i] and picks[i] size job i
// (picks entries may be nil — fixed-cores jobs carry no decision).
func buildSpecs(mix []string, arrivals []time.Duration, cores []int, picks []*cluster.CostPick, seed uint64) ([]cluster.JobSpec, error) {
	type baseKey struct {
		name  string
		cores int
	}
	mk := func(name string, seed uint64) workloads.Workload {
		factory, _ := experiments.MixWorkload(name)
		return factory(seed)
	}
	baselines := make(map[baseKey]time.Duration)
	specs := make([]cluster.JobSpec, len(arrivals))
	for i, at := range arrivals {
		name := mix[i%len(mix)]
		k := baseKey{name, cores[i]}
		base, ok := baselines[k]
		if !ok {
			var err error
			base, err = cluster.Baseline(mk(name, seed), cores[i], seed)
			if err != nil {
				return nil, fmt.Errorf("baseline %s x%d: %w", name, cores[i], err)
			}
			baselines[k] = base
		}
		specs[i] = cluster.JobSpec{
			Name:     name,
			Workload: mk(name, seed+uint64(i)),
			Cores:    cores[i],
			Arrival:  at,
			Baseline: base,
			Pick:     picks[i],
		}
	}
	return specs, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jobs       = flag.Int("jobs", 8, "number of jobs in the stream")
		mixSpec    = flag.String("mix", "sparkpi,pagerank,kmeans", "comma-separated workload mix: "+mixNames())
		arrival    = flag.String("arrival", "poisson:45s", "arrival process: poisson:MEAN | uniform:GAP | bursty:KxGAP | trace:D1,D2,... | tracefile:PATH")
		policy     = flag.String("policy", "fair", "core-sharing policy: fifo | fair")
		strategy   = flag.String("strategy", "bridge", "shortfall strategy: queue | autoscale | bridge")
		slo        = flag.Float64("slo", 1.5, "SLO factor: deadline = factor x full-provisioning baseline")
		pool       = flag.Int("pool", 16, "shared VM pool size in cores")
		cores      = flag.String("cores", "8", "per-job core demand R, or \"auto\" to let the cost manager size each job (-profiles)")
		profiles   = flag.String("profiles", "", "profile file from `splitserve-profile -out` (required with -cores auto)")
		alloc      = flag.String("alloc", "min-cost", "cost-manager policy with -cores auto: min-cost | min-time | knee")
		budget     = flag.Float64("budget", 0, "per-job predicted-cost cap in USD for -alloc min-time (0 = uncapped)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		report     = flag.String("report", "", "emit the run report: json | prom (default: summary table)")
		compare    = flag.Bool("compare", false, "run the day-long strategy comparison (mirrors splitserve-bench -daysim with real DAGs)")
		costcmp    = flag.Bool("costcompare", false, "run the fixed-R vs cost-manager comparison (requires -profiles)")
		scaledown  = flag.Duration("scaledown", 0, "release autoscale-procured VMs idle for this long back to the provider (0 disables)")
		admission  = flag.String("admission", "greedy", "admission policy: greedy | deadline (delay or shed jobs whose SLO is unattainable)")
		elastic    = flag.Bool("elastic", false, "run the elasticity comparison: keep-forever vs -scaledown vs -scaledown plus deadline admission")
		warmPool   = flag.Int("warmpool", 0, "provision this many warm Lambda environments (provisioned concurrency; 0 disables)")
		tmpCache   = flag.Bool("tmpcache", false, "serve repeat shuffle reads from warm environments' /tmp cache tier (needs -warmpool)")
		warmsweep  = flag.Bool("warmsweep", false, "run the warm-pool crossover sweep: VM autoscale vs cold Lambda vs warm+cached Lambda per arrival rate x shuffle reuse")
		coldstart  = flag.Bool("coldstarts", false, "model a cold ambient Lambda fleet: first invocations pay the full cold-start latency (default: always-warm ambient environments)")
		shards     = flag.Int("shards", 1, "control-plane shards: the pool splits evenly across this many scheduler instances keyed by tenant hash (>1 requires tenant labels)")
		tenants    = flag.Int("tenants", 0, "label the job stream with this many synthetic tenants (t00, t01, ... round-robin); 0 leaves it untenanted")
		validate   = flag.Bool("validate", false, "after replaying a production trace, check the merged report against the trace's per-tenant distributions (exit 1 on mismatch)")
		shardsweep = flag.Bool("shardsweep", false, "run the shard-scaling sweep: one skewed multi-tenant stream at 1, 2 and 4 shards")
		eventLog   = flag.String("eventlog", "", cliutil.EventLogUsage)
		trace      = flag.String("trace", "", cliutil.TraceUsage)
		attribF    = flag.String("attrib", "", cliutil.AttribUsage)
	)
	perf := cliutil.RegisterPerfFlags(nil)
	flag.Parse()

	if err := cliutil.ValidateReport(*report); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}

	// Validate the shared vocabulary flags up front — unknown names must
	// fail with the accepted list whichever subcommand runs, never fall
	// back silently.
	pol, err := cluster.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	strat, err := cluster.StrategyByName(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	adm, err := cluster.AdmissionByName(*admission)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	allocPol, err := costmgr.PolicyByName(*alloc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	if *scaledown < 0 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: negative -scaledown %s (0 disables)\n", *scaledown)
		return 2
	}
	if *warmPool < 0 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: negative -warmpool %d (0 disables)\n", *warmPool)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: bad -shards %d (want >= 1)\n", *shards)
		return 2
	}
	if *pool%*shards != 0 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: -shards %d does not divide the %d-core pool evenly (accepted shard counts: %v)\n",
			*shards, *pool, shard.Divisors(*pool))
		return 2
	}
	if *tenants < 0 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: negative -tenants %d (0 leaves the stream untenanted)\n", *tenants)
		return 2
	}
	perf.Label = *strategy + "/" + *mixSpec
	prof, err := perf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	defer perf.Stop()
	// The comparison subcommands run through experiments; route the
	// collector to them via the package-level hook.
	experiments.SetProfiler(prof)
	writePerf := func() int {
		if err := perf.WriteSnapshot(prof); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		return 0
	}

	if *compare {
		reps, err := experiments.ClusterComparison(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== multi-job day: shortfall strategies on one shared pool, real DAGs ==")
		fmt.Print(experiments.FormatClusterComparison(reps))
		return writePerf()
	}

	if *elastic {
		idle := *scaledown
		if idle <= 0 {
			idle = 45 * time.Second
		}
		reps, err := experiments.ClusterElasticity(*seed, idle)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== elasticity: keep-forever vs idle scale-down vs deadline admission ==")
		fmt.Print(experiments.FormatClusterElasticity(reps))
		return writePerf()
	}

	if *warmsweep {
		cells, err := experiments.WarmPoolComparison(*seed, experiments.WarmPoolSweepConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== warm pool: VM autoscale vs cold Lambda vs warm+cached Lambda ==")
		fmt.Print(experiments.FormatWarmPoolComparison(cells))
		return writePerf()
	}

	if *shardsweep {
		reps, err := experiments.ShardScaling(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== sharded control plane: one skewed multi-tenant stream at 1, 2 and 4 shards ==")
		fmt.Print(experiments.FormatShardScaling(reps))
		return writePerf()
	}

	if *costcmp {
		if *profiles == "" {
			fmt.Fprintln(os.Stderr, "splitserve-cluster: -costcompare requires -profiles (run splitserve-profile -out first)")
			return 2
		}
		f, err := costmgr.Load(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		runs, err := experiments.CostManagerComparison(*seed, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== cost manager: fixed per-job R vs profile-driven allocation ==")
		fmt.Print(experiments.FormatCostManagerComparison(runs))
		return writePerf()
	}

	// A production-shaped trace (tenant,arrival,runtime,cores) is replayed
	// wholesale: every row becomes a job sized to its traced runtime and
	// demand, so -jobs/-mix/-cores do not apply.
	if path, ok := strings.CutPrefix(*arrival, "tracefile:"); ok && tracereplay.Detect(path) {
		tr, err := tracereplay.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 2
		}
		for _, w := range tr.Warnings {
			fmt.Fprintln(os.Stderr, "splitserve-cluster: warning:", w)
		}
		specs, err := tracereplay.Specs(tr, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		return runSharded(shardedArgs{
			shards: *shards, pool: *pool, policy: pol, strategy: strat,
			slo: *slo, seed: *seed, admission: adm, scaledown: *scaledown,
			warmPool: *warmPool, tmpCache: *tmpCache, coldStarts: *coldstart,
			alloc: "trace", prof: prof, specs: specs, report: *report,
			eventLog: *eventLog, trace: *trace, attribF: *attribF,
			prodTrace: tr, validate: *validate, writePerf: writePerf,
		})
	}
	if *validate {
		fmt.Fprintln(os.Stderr, "splitserve-cluster: -validate requires a production trace (-arrival tracefile:PATH with tenant,arrival,runtime,cores rows)")
		return 2
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}

	auto := *cores == "auto"
	fixedCores := 0
	if !auto {
		fixedCores, err = strconv.Atoi(*cores)
		if err != nil || fixedCores < 1 {
			fmt.Fprintf(os.Stderr, "splitserve-cluster: bad -cores %q (want a positive integer or \"auto\")\n", *cores)
			return 2
		}
	} else if *profiles == "" {
		fmt.Fprintln(os.Stderr, "splitserve-cluster: -cores auto requires -profiles (run splitserve-profile -out first)")
		return 2
	}

	arrivals, err := cluster.ParseArrivals(*arrival, *jobs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	// A tracefile may pin some jobs' core demand and tenant per row;
	// pinned cores bypass both the fixed default and the cost manager.
	var traceCores []int
	var traceTenants []string
	if path, ok := strings.CutPrefix(*arrival, "tracefile:"); ok {
		tr, err := cluster.LoadArrivalTrace(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 2
		}
		for _, w := range tr.Warnings {
			fmt.Fprintln(os.Stderr, "splitserve-cluster: warning:", w)
		}
		traceCores = tr.Cores
		traceTenants = tr.Tenants
	}

	coreList := make([]int, len(arrivals))
	picks := make([]*cluster.CostPick, len(arrivals))
	allocLabel := "fixed"
	if auto {
		f, err := costmgr.Load(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		mgr, err := costmgr.NewManager(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		allocLabel = allocPol.String()
		for i := range arrivals {
			name := mix[i%len(mix)]
			d, err := mgr.Decide(allocPol, costmgr.Request{
				Workload:  name,
				MaxCores:  *pool,
				Fallback:  8,
				SLOFactor: *slo,
				BudgetUSD: *budget,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
				return 1
			}
			coreList[i] = d.Cores
			picks[i] = &cluster.CostPick{
				Policy:           d.Policy,
				PredictedRun:     d.PredictedRun(),
				PredictedCostUSD: d.PredictedCostUSD,
				Source:           d.Source,
			}
		}
	} else {
		for i := range coreList {
			coreList[i] = fixedCores
		}
	}
	for i, c := range traceCores {
		if i < len(coreList) && c > 0 {
			coreList[i] = c
			picks[i] = nil
		}
	}

	specs, err := buildSpecs(mix, arrivals, coreList, picks, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}

	// Tenant labels: a tracefile TENANT column wins per row; otherwise
	// -tenants N labels the stream round-robin.
	tenanted := false
	for i := range specs {
		if i < len(traceTenants) && traceTenants[i] != "" {
			specs[i].Tenant = traceTenants[i]
		} else if *tenants > 0 {
			specs[i].Tenant = fmt.Sprintf("t%02d", i%*tenants)
		}
		if specs[i].Tenant != "" {
			tenanted = true
		}
	}
	if *shards > 1 && !tenanted {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: -shards %d needs tenant labels (use -tenants N or a tracefile TENANT column)\n", *shards)
		return 2
	}
	// Any tenant label routes the run through the sharded control plane —
	// even at -shards 1 — so per-tenant reporting is uniform. Untenanted
	// single-shard runs keep the direct scheduler path below byte for byte.
	if tenanted {
		return runSharded(shardedArgs{
			shards: *shards, pool: *pool, policy: pol, strategy: strat,
			slo: *slo, seed: *seed, admission: adm, scaledown: *scaledown,
			warmPool: *warmPool, tmpCache: *tmpCache, coldStarts: *coldstart,
			alloc: allocLabel, prof: prof, specs: specs, report: *report,
			eventLog: *eventLog, trace: *trace, attribF: *attribF,
			writePerf: writePerf,
		})
	}

	s, err := cluster.New(cluster.Config{
		Jobs:          specs,
		PoolCores:     *pool,
		Policy:        pol,
		Strategy:      strat,
		SLOFactor:     *slo,
		Seed:          *seed,
		Admission:     adm,
		ScaleDownIdle: *scaledown,
		WarmPool:      *warmPool,
		TmpCache:      *tmpCache,
		ColdStarts:    *coldstart,
		Alloc:         allocLabel,
		Prof:          prof,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	rep, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteEventLog(*eventLog, s.Events().Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteTrace(*trace, s.Events().Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteAttrib(*attribF, s.Events().Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}

	switch *report {
	case "json":
		buf, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		os.Stdout.Write(buf)
	case "prom":
		if err := s.WriteProm(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
	default:
		fmt.Print(rep)
	}
	return writePerf()
}

// shardedArgs carries the resolved flag set into the sharded
// control-plane path.
type shardedArgs struct {
	shards     int
	pool       int
	policy     cluster.Policy
	strategy   cluster.Strategy
	slo        float64
	seed       uint64
	admission  cluster.Admission
	scaledown  time.Duration
	warmPool   int
	tmpCache   bool
	coldStarts bool
	alloc      string
	prof       *perfstat.Collector
	specs      []cluster.JobSpec
	report     string
	eventLog   string
	trace      string
	attribF    string
	prodTrace  *tracereplay.Trace
	validate   bool
	writePerf  func() int
}

// runSharded drives a tenant-labelled stream through the sharded
// control plane and emits the merged report, event log and attribution.
func runSharded(a shardedArgs) int {
	if a.report == "prom" {
		fmt.Fprintln(os.Stderr, "splitserve-cluster: -report prom is not supported on the sharded control-plane path (use json or the default table)")
		return 2
	}
	m, err := shard.New(shard.Config{
		Shards: a.shards,
		Cluster: cluster.Config{
			Jobs:          a.specs,
			PoolCores:     a.pool,
			Policy:        a.policy,
			Strategy:      a.strategy,
			SLOFactor:     a.slo,
			Seed:          a.seed,
			Admission:     a.admission,
			ScaleDownIdle: a.scaledown,
			WarmPool:      a.warmPool,
			TmpCache:      a.tmpCache,
			ColdStarts:    a.coldStarts,
			Alloc:         a.alloc,
			Prof:          a.prof,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	rep, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	events := m.Events()
	if err := cliutil.WriteEventLog(a.eventLog, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteTrace(a.trace, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteAttrib(a.attribF, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}

	switch a.report {
	case "json":
		buf, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		os.Stdout.Write(buf)
	default:
		fmt.Print(rep)
	}
	// The validation table goes to stderr so -report json output stays
	// parseable; the exit code is the machine-readable verdict.
	if a.prodTrace != nil && a.validate {
		v := tracereplay.Validate(a.prodTrace, rep)
		fmt.Fprint(os.Stderr, v)
		if !v.OK {
			return 1
		}
	}
	return a.writePerf()
}
