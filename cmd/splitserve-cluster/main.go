// Command splitserve-cluster runs the multi-job cluster scheduler: a
// stream of real task-graph jobs (Poisson, uniform, bursty or explicit
// trace arrivals) against one shared VM pool, with pluggable sharing
// policies and the paper's three shortfall strategies:
//
//	splitserve-cluster -jobs 12 -arrival poisson:45s -policy fair -strategy bridge
//	splitserve-cluster -mix sparkpi,tpcds -pool 32 -slo 1.3 -report json
//	splitserve-cluster -compare
//
// Same seed, same flags → byte-identical -report json output.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"splitserve/internal/cliutil"
	"splitserve/internal/cluster"
	"splitserve/internal/experiments"
	"splitserve/internal/workloads"
)

var mixFactories = map[string]func(seed uint64) workloads.Workload{
	"sparkpi":  experiments.NewSparkPi,
	"pagerank": experiments.NewPageRank,
	"kmeans":   experiments.NewKMeans,
	"tpcds":    func(seed uint64) workloads.Workload { return experiments.NewTPCDSQuery("q95") },
}

func mixNames() string {
	names := make([]string, 0, len(mixFactories))
	for n := range mixFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// parseMix resolves a comma-separated workload mix against mixFactories.
func parseMix(spec string) ([]string, error) {
	var out []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := mixFactories[name]; !ok {
			return nil, fmt.Errorf("unknown workload %q in -mix (accepted: %s)", name, mixNames())
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -mix (accepted: %s)", mixNames())
	}
	return out, nil
}

// buildSpecs calibrates one baseline per mix entry and assembles the
// round-robin job stream.
func buildSpecs(mix []string, arrivals []time.Duration, cores int, seed uint64) ([]cluster.JobSpec, error) {
	baselines := make(map[string]time.Duration, len(mix))
	for _, name := range mix {
		base, err := cluster.Baseline(mixFactories[name](seed), cores, seed)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", name, err)
		}
		baselines[name] = base
	}
	specs := make([]cluster.JobSpec, len(arrivals))
	for i, at := range arrivals {
		name := mix[i%len(mix)]
		specs[i] = cluster.JobSpec{
			Name:     name,
			Workload: mixFactories[name](seed + uint64(i)),
			Cores:    cores,
			Arrival:  at,
			Baseline: baselines[name],
		}
	}
	return specs, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jobs     = flag.Int("jobs", 8, "number of jobs in the stream")
		mixSpec  = flag.String("mix", "sparkpi,pagerank,kmeans", "comma-separated workload mix: "+mixNames())
		arrival  = flag.String("arrival", "poisson:45s", "arrival process: poisson:MEAN | uniform:GAP | bursty:KxGAP | trace:D1,D2,...")
		policy   = flag.String("policy", "fair", "core-sharing policy: fifo | fair")
		strategy = flag.String("strategy", "bridge", "shortfall strategy: queue | autoscale | bridge")
		slo      = flag.Float64("slo", 1.5, "SLO factor: deadline = factor x full-provisioning baseline")
		pool     = flag.Int("pool", 16, "shared VM pool size in cores")
		cores    = flag.Int("cores", 8, "per-job core demand R")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		report    = flag.String("report", "", "emit the run report: json | prom (default: summary table)")
		compare   = flag.Bool("compare", false, "run the day-long strategy comparison (mirrors splitserve-bench -daysim with real DAGs)")
		scaledown = flag.Duration("scaledown", 0, "release autoscale-procured VMs idle for this long back to the provider (0 disables)")
		admission = flag.String("admission", "greedy", "admission policy: greedy | deadline (delay or shed jobs whose SLO is unattainable)")
		elastic   = flag.Bool("elastic", false, "run the elasticity comparison: keep-forever vs -scaledown vs -scaledown plus deadline admission")
		eventLog  = flag.String("eventlog", "", cliutil.EventLogUsage)
		trace     = flag.String("trace", "", cliutil.TraceUsage)
	)
	flag.Parse()

	if err := cliutil.ValidateReport(*report); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}

	if *compare {
		reps, err := experiments.ClusterComparison(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== multi-job day: shortfall strategies on one shared pool, real DAGs ==")
		fmt.Print(experiments.FormatClusterComparison(reps))
		return 0
	}

	if *elastic {
		idle := *scaledown
		if idle <= 0 {
			idle = 45 * time.Second
		}
		reps, err := experiments.ClusterElasticity(*seed, idle)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		fmt.Println("== elasticity: keep-forever vs idle scale-down vs deadline admission ==")
		fmt.Print(experiments.FormatClusterElasticity(reps))
		return 0
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	pol, err := cluster.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	strat, err := cluster.StrategyByName(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	adm, err := cluster.AdmissionByName(*admission)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	if *scaledown < 0 {
		fmt.Fprintf(os.Stderr, "splitserve-cluster: negative -scaledown %s (0 disables)\n", *scaledown)
		return 2
	}
	arrivals, err := cluster.ParseArrivals(*arrival, *jobs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 2
	}
	specs, err := buildSpecs(mix, arrivals, *cores, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}

	s, err := cluster.New(cluster.Config{
		Jobs:          specs,
		PoolCores:     *pool,
		Policy:        pol,
		Strategy:      strat,
		SLOFactor:     *slo,
		Seed:          *seed,
		Admission:     adm,
		ScaleDownIdle: *scaledown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	rep, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteEventLog(*eventLog, s.Events().Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}
	if err := cliutil.WriteTrace(*trace, s.Events().Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
		return 1
	}

	switch *report {
	case "json":
		buf, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
		os.Stdout.Write(buf)
	case "prom":
		if err := s.WriteProm(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-cluster:", err)
			return 1
		}
	default:
		fmt.Print(rep)
	}
	return 0
}
