package main

import (
	"strings"
	"testing"
	"time"

	"splitserve/internal/cluster"
	"splitserve/internal/experiments"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("sparkpi, kmeans,pagerank")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	if len(mix) != 3 || mix[0] != "sparkpi" || mix[1] != "kmeans" {
		t.Fatalf("parseMix = %v", mix)
	}
	if _, err := parseMix("sparkpi,nope"); err == nil || !strings.Contains(err.Error(), "accepted:") {
		t.Fatalf("unknown workload should list accepted names, got %v", err)
	}
	if _, err := parseMix(" , "); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestMixFactoriesBuildWorkloads(t *testing.T) {
	for _, name := range experiments.MixNames() {
		mk, ok := experiments.MixWorkload(name)
		if !ok {
			t.Fatalf("MixNames lists %q but MixWorkload cannot resolve it", name)
		}
		w := mk(1)
		if w.Name() == "" || w.DefaultParallelism() <= 0 {
			t.Fatalf("%s: degenerate workload", name)
		}
	}
}

func TestBuildSpecsRoundRobin(t *testing.T) {
	arrivals := []time.Duration{0, time.Second, 2 * time.Second}
	cores := []int{4, 4, 4}
	picks := make([]*cluster.CostPick, 3)
	specs, err := buildSpecs([]string{"sparkpi", "kmeans"}, arrivals, cores, picks, 1)
	if err != nil {
		t.Fatalf("buildSpecs: %v", err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if specs[0].Name != "sparkpi" || specs[1].Name != "kmeans" || specs[2].Name != "sparkpi" {
		t.Fatalf("round-robin broken: %s %s %s", specs[0].Name, specs[1].Name, specs[2].Name)
	}
	for i, s := range specs {
		if s.Baseline <= 0 {
			t.Errorf("spec %d has no baseline", i)
		}
		if s.Arrival != arrivals[i] || s.Cores != 4 || s.Workload == nil {
			t.Errorf("spec %d malformed: %+v", i, s)
		}
	}
	if specs[0].Baseline != specs[2].Baseline {
		t.Error("same workload name should share one calibrated baseline")
	}
}
