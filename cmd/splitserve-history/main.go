// Command splitserve-history is the repo's history server: it replays a
// saved event log (or runs a scenario inline) and renders straggler
// analytics, Chrome-trace timelines, and an HTML timeline view — the
// Spark History Server analogue for the simulator.
//
//	splitserve-sim -workload pagerank -eventlog events.jsonl
//	splitserve-history -log events.jsonl                  # analytics tables
//	splitserve-history -log events.jsonl -trace out.json  # Chrome trace for ui.perfetto.dev
//	splitserve-history -log events.jsonl -serve :8080     # timeline over HTTP
//	splitserve-history -log events.jsonl -attrib rep.json # causal attribution report
//	splitserve-history -diff old.json new.json            # per-cause attribution deltas
//	splitserve-history -workload kmeans -scenario hybrid  # run inline, no saved log
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"splitserve"
	"splitserve/internal/attrib"
	"splitserve/internal/cliutil"
	"splitserve/internal/eventlog"
	"splitserve/internal/perfstat"
)

var scenarioByName = map[string]splitserve.ScenarioKind{
	"spark-small":  splitserve.ScenarioSparkSmall,
	"spark-full":   splitserve.ScenarioSparkFull,
	"autoscale":    splitserve.ScenarioSparkAutoscale,
	"qubole":       splitserve.ScenarioQubole,
	"ss-vm":        splitserve.ScenarioSSFullVM,
	"ss-lambda":    splitserve.ScenarioSSLambda,
	"hybrid":       splitserve.ScenarioHybrid,
	"hybrid-segue": splitserve.ScenarioHybridSegue,
}

func scenarioNames() string {
	names := make([]string, 0, len(scenarioByName))
	for n := range scenarioByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		logPath  = flag.String("log", "", "event log (JSONL) to replay; - = stdin (default: run a scenario inline)")
		workload = flag.String("workload", "pagerank", "inline run: pagerank | kmeans | sparkpi | tpcds-q5 | tpcds-q16 | tpcds-q94 | tpcds-q95")
		scenario = flag.String("scenario", "hybrid", "inline run: "+scenarioNames())
		r        = flag.Int("r", 0, "inline run: required cores R (0 = workload default)")
		small    = flag.Int("small", 0, "inline run: free VM cores r (0 = R/4)")
		seed     = flag.Uint64("seed", 1, "inline run: simulation seed")
		factor   = flag.Float64("factor", eventlog.DefaultStragglerFactor,
			"straggler cut as a multiple of the stage median task duration")
		trace      = flag.String("trace", "", cliutil.TraceUsage)
		attribF    = flag.String("attrib", "", cliutil.AttribUsage)
		attribHTML = flag.String("attribhtml", "", "write the /attrib waterfall page as standalone HTML to this file (- = stdout)")
		diffMode   = flag.Bool("diff", false, "compare two runs: splitserve-history -diff OLD NEW, where each is an attribution report (JSON) or an event log (JSONL)")
		serve      = flag.String("serve", "", "serve the timeline over HTTP at this address (e.g. :8080) instead of printing")
		perfin     = flag.String("perfin", "", "saved perfstat snapshot (from any command's -perf) to render on the /perf page")
	)
	perf := cliutil.RegisterPerfFlags(nil)
	flag.Parse()

	if *diffMode {
		return runDiff(flag.Args())
	}

	perf.Label = "history"
	prof, err := perf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-history:", err)
		return 2
	}
	defer perf.Stop()

	events, err := loadEvents(*logPath, *workload, *scenario, *r, *small, *seed, prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-history:", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "splitserve-history: event log is empty")
		return 1
	}
	if err := cliutil.WriteTrace(*trace, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-history:", err)
		return 1
	}
	if err := cliutil.WriteAttrib(*attribF, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-history:", err)
		return 1
	}

	analysis := eventlog.Analyze(events, *factor)
	attribution := attrib.Analyze(events)
	if *attribHTML != "" {
		if err := writeFileOrStdout(*attribHTML, renderAttribHTML(attribution)); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-history:", err)
			return 1
		}
	}

	// The /perf page renders a saved snapshot (-perfin) or, failing that,
	// the profile of this process's own inline run (-perf).
	var snap *perfstat.Snapshot
	if *perfin != "" {
		buf, err := os.ReadFile(*perfin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-history:", err)
			return 1
		}
		if snap, err = perfstat.ParseSnapshot(buf); err != nil {
			fmt.Fprintf(os.Stderr, "splitserve-history: %s: %v\n", *perfin, err)
			return 1
		}
	} else if prof != nil {
		snap = prof.Snapshot()
	}
	if err := perf.WriteSnapshot(prof); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-history:", err)
		return 1
	}

	if *serve != "" {
		fmt.Fprintf(os.Stderr, "splitserve-history: serving %d events on http://%s/ (/, /trace, /analysis, /attrib, /log, /perf)\n",
			len(events), strings.TrimPrefix(*serve, ":"))
		if err := serveHistory(*serve, events, analysis, attribution, snap); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-history:", err)
			return 1
		}
		return 0
	}

	fmt.Printf("replayed %d events spanning %s\n\n", len(events), spanOf(events))
	fmt.Print(analysis.String())
	return 0
}

// loadEvents reads a saved JSONL log, or runs the requested scenario
// inline when no log is given.
func loadEvents(path, workload, scenario string, r, small int, seed uint64, prof *perfstat.Collector) ([]eventlog.Event, error) {
	if path == "-" {
		return eventlog.ReadJSONL(os.Stdin)
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return eventlog.ReadJSONL(f)
	}

	kind, ok := scenarioByName[scenario]
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (accepted: %s)", scenario, scenarioNames())
	}
	w, err := buildWorkload(workload, seed)
	if err != nil {
		return nil, err
	}
	opts := []splitserve.Option{splitserve.WithSeed(seed)}
	if prof != nil {
		opts = append(opts, splitserve.WithSelfProfile(prof))
	}
	cores := w.DefaultParallelism()
	if r > 0 {
		cores = r
	}
	sm := cores / 4
	if small > 0 {
		sm = small
	}
	if sm < 1 {
		sm = 1
	}
	opts = append(opts, splitserve.WithCores(cores, sm))
	res, err := splitserve.Run(kind, w, opts...)
	if err != nil {
		return nil, err
	}
	return res.Events(), nil
}

func buildWorkload(name string, seed uint64) (splitserve.Workload, error) {
	switch {
	case name == "pagerank":
		return splitserve.PageRank(splitserve.PageRankOptions{Seed: seed}), nil
	case name == "kmeans":
		return splitserve.KMeans(splitserve.KMeansOptions{Seed: seed}), nil
	case name == "sparkpi":
		return splitserve.SparkPi(splitserve.SparkPiOptions{Seed: seed}), nil
	case strings.HasPrefix(name, "tpcds-"):
		return splitserve.TPCDSQuery(strings.TrimPrefix(name, "tpcds-")), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func spanOf(events []eventlog.Event) string {
	var max int64
	for _, e := range events {
		if e.TS > max {
			max = e.TS
		}
	}
	return fmt.Sprintf("%.2fs of virtual time", float64(max)/1e6)
}

// serveHistory exposes the replayed run over HTTP: an HTML timeline at /,
// the Chrome trace JSON at /trace, the analytics text at /analysis, the
// causal-attribution waterfall at /attrib, the raw log at /log, and
// host-side self-profiling at /perf.
func serveHistory(addr string, events []eventlog.Event, analysis *eventlog.Analysis, attribution *attrib.Report, snap *perfstat.Snapshot) error {
	traceJSON, err := eventlog.ChromeTrace(events)
	if err != nil {
		return err
	}
	page := renderHTML(analysis)
	analysisText := analysis.String()
	attribPage := renderAttribHTML(attribution)
	perfPage := renderPerfHTML(snap)

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(page)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		w.Write(traceJSON)
	})
	mux.HandleFunc("/analysis", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, analysisText)
	})
	mux.HandleFunc("/log", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		eventlog.WriteJSONL(w, events)
	})
	mux.HandleFunc("/attrib", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(attribPage)
	})
	mux.HandleFunc("/perf", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(perfPage)
	})
	return http.ListenAndServe(addr, mux)
}

// runDiff implements -diff OLD NEW: each argument is either a saved
// splitserve-attrib/v1 report or an event log (JSONL), which is
// attributed on the fly. The per-cause comparison prints as a table;
// the exit code is 0 either way (a nonzero delta is not an error).
func runDiff(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "splitserve-history: -diff needs exactly two arguments: OLD NEW")
		return 2
	}
	old, err := loadReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitserve-history: %s: %v\n", args[0], err)
		return 1
	}
	new, err := loadReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitserve-history: %s: %v\n", args[1], err)
		return 1
	}
	fmt.Print(attrib.DiffReports(old, new).String())
	return 0
}

// loadReport reads path as an attribution report, falling back to
// replaying it as an event log and attributing that.
func loadReport(path string) (*attrib.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if rep, err := attrib.ParseReport(buf); err == nil {
		return rep, nil
	}
	events, err := eventlog.ReadJSONL(bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("neither an attribution report nor an event log: %w", err)
	}
	return attrib.Analyze(events), nil
}

// writeFileOrStdout mirrors cliutil's output convention for the
// standalone attribution HTML ("-" = stdout).
func writeFileOrStdout(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
