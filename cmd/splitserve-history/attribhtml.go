package main

import (
	"bytes"
	"fmt"
	"html"

	"splitserve/internal/attrib"
)

// causeColors is the blame palette for the /attrib waterfall. Compute
// stays the timeline's task green; waits and overheads get their own
// hues so a glance shows where the makespan went.
var causeColors = map[attrib.Cause]string{
	attrib.QueueWait:       "#a89f68",
	attrib.AdmissionDelay:  "#8c6fb0",
	attrib.VMBoot:          "#4f7fb0",
	attrib.LambdaColdStart: "#b55f1f",
	attrib.Compute:         colorVM,
	attrib.ShuffleWrite:    "#3aa0a0",
	attrib.ShuffleFetch:    "#2a7f7f",
	attrib.StragglerTail:   colorStraggler,
	attrib.PreemptOverhead: "#999999",
}

// renderAttribHTML builds the /attrib page: one waterfall row per job,
// its critical path tiled as blame-colored slices on the shared virtual
// clock, with the aggregate attribution tables below.
func renderAttribHTML(rep *attrib.Report) []byte {
	var b bytes.Buffer
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>splitserve-history · attribution</title>
<style>
body { font-family: monospace; margin: 1.5em; }
pre  { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.legend span { display: inline-block; width: 12px; height: 12px; margin: 0 4px 0 12px; vertical-align: middle; }
.note { color: #777; }
</style></head><body>
<h1>causal attribution</h1>
<p><a href="/">timeline</a> &middot; <a href="/trace">trace.json</a> &middot; <a href="/analysis">analysis</a> &middot; <a href="/log">event log</a> &middot; <a href="/perf">self-profiling</a></p>
<p class="note">Each row is one job's critical path on the virtual clock, tiled into blame
slices that sum to its makespan (schema ` + attrib.SchemaV1 + `).</p>
`)
	if len(rep.Jobs) == 0 {
		b.WriteString("<p>No jobs to attribute in this log.</p>\n</body></html>\n")
		return b.Bytes()
	}

	b.WriteString(`<p class="legend">`)
	for _, c := range attrib.Causes {
		if c.Savings() {
			continue
		}
		fmt.Fprintf(&b, `<span style="background:%s"></span>%s`, causeColors[c], string(c))
	}
	b.WriteString("</p>\n")

	// Global window: all jobs share one clock axis.
	lo, hi := rep.Jobs[0].ArrivalUS, rep.Jobs[0].EndUS
	for _, j := range rep.Jobs {
		if j.ArrivalUS < lo {
			lo = j.ArrivalUS
		}
		if j.EndUS > hi {
			hi = j.EndUS
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	x := func(us int64) float64 {
		return float64(us-lo) / float64(hi-lo) * svgWidth
	}

	var svg bytes.Buffer
	height := len(rep.Jobs)*(rowHeight+rowGap) + rowGap
	fmt.Fprintf(&svg, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`,
		labelWidth+svgWidth+10, height)
	for i, j := range rep.Jobs {
		y := rowGap + i*(rowHeight+rowGap)
		label := j.App
		if j.Failed {
			label += " (failed)"
		}
		fmt.Fprintf(&svg, `<text x="%d" y="%d">%s</text>`,
			4, y+rowHeight-7, html.EscapeString(trunc(label, 34)))
		for _, seg := range j.Path {
			sx := x(seg.StartUS)
			sw := x(seg.EndUS) - sx
			if sw < 1 {
				sw = 1
			}
			fill, ok := causeColors[seg.Cause]
			if !ok {
				fill = colorLifetime
			}
			tip := fmt.Sprintf("%s: %s", seg.Cause, durLabel(seg.DurUS()))
			if seg.Stage >= 0 {
				tip += fmt.Sprintf(" (stage %d task %d", seg.Stage, seg.Task)
				if seg.Exec != "" {
					tip += " on " + seg.Exec
				}
				tip += ")"
			} else if seg.Exec != "" {
				tip += " (" + seg.Exec + ")"
			} else if seg.Detail != "" {
				tip += " (" + seg.Detail + ")"
			}
			fmt.Fprintf(&svg,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s</title></rect>`,
				float64(labelWidth)+sx, y+2, sw, rowHeight-4, fill, html.EscapeString(tip))
		}
	}
	fmt.Fprint(&svg, `</svg>`)
	b.Write(svg.Bytes())

	b.WriteString("\n<h2>blame tables</h2>\n<pre>")
	b.WriteString(html.EscapeString(rep.String()))
	b.WriteString("</pre>\n</body></html>\n")
	return b.Bytes()
}
