package main

import (
	"bytes"
	"fmt"
	"html"

	"splitserve/internal/eventlog"
)

// Timeline geometry and palette. The page is server-rendered inline SVG —
// no JavaScript — so it works in any browser and in CI artifact previews.
const (
	svgWidth   = 1000
	rowHeight  = 22
	rowGap     = 4
	labelWidth = 230

	colorVM        = "#4c9a52" // green, matches the trace's thread_state_running
	colorLambda    = "#e08c3c" // orange, matches thread_state_iowait
	colorFailed    = "#c0392b"
	colorLifetime  = "#e8e8e8"
	colorStraggler = "#c0392b"
)

// renderHTML builds the minimal timeline page: one row per executor with
// its lifetime in grey and each task as a slice colored by backend;
// stragglers get a red outline. Below the chart, the analytics tables are
// embedded verbatim.
func renderHTML(a *eventlog.Analysis) []byte {
	endUS := a.EndUS
	if endUS <= 0 {
		endUS = 1
	}
	x := func(us int64) float64 {
		return float64(us) / float64(endUS) * svgWidth
	}

	// Tasks per (app, exec) row.
	type rowKey struct{ app, exec string }
	tasks := map[rowKey][]eventlog.TaskStat{}
	for _, s := range a.Stages {
		for _, t := range s.Tasks {
			k := rowKey{t.App, t.Exec}
			tasks[k] = append(tasks[k], t)
		}
	}

	var svg bytes.Buffer
	height := len(a.Executors)*(rowHeight+rowGap) + rowGap
	fmt.Fprintf(&svg, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`,
		labelWidth+svgWidth+10, height)
	for i, ex := range a.Executors {
		y := rowGap + i*(rowHeight+rowGap)
		label := ex.Exec
		if ex.App != "" {
			label = ex.App + " / " + ex.Exec
		}
		fmt.Fprintf(&svg, `<text x="%d" y="%d">%s</text>`,
			4, y+rowHeight-7, html.EscapeString(trunc(label, 34)))

		// Lifetime band.
		x0, x1 := x(ex.AddUS), x(ex.RemoveUS)
		if x1 <= x0 {
			x1 = x0 + 1
		}
		fmt.Fprintf(&svg, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
			float64(labelWidth)+x0, y, x1-x0, rowHeight, colorLifetime)

		// Task slices.
		for _, t := range tasks[rowKey{ex.App, ex.Exec}] {
			tx := x(t.StartUS)
			tw := x(t.StartUS+t.DurUS) - tx
			if tw < 1 {
				tw = 1
			}
			fill := colorVM
			if t.Kind == "lambda" {
				fill = colorLambda
			}
			if t.Failed {
				fill = colorFailed
			}
			stroke := ""
			if t.Straggler {
				stroke = fmt.Sprintf(` stroke="%s" stroke-width="2"`, colorStraggler)
			}
			fmt.Fprintf(&svg,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"%s><title>%s</title></rect>`,
				float64(labelWidth)+tx, y+2, tw, rowHeight-4, fill, stroke,
				html.EscapeString(fmt.Sprintf("stage %d task %d on %s (%s): %s",
					t.Stage, t.Task, t.Exec, kindOrDash2(t.Kind), durLabel(t.DurUS))))
		}
	}
	fmt.Fprint(&svg, `</svg>`)

	var b bytes.Buffer
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>splitserve-history</title>
<style>
body { font-family: monospace; margin: 1.5em; }
pre  { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.legend span { display: inline-block; width: 12px; height: 12px; margin: 0 4px 0 12px; vertical-align: middle; }
</style></head><body>
<h1>splitserve-history</h1>
<p><a href="/trace">trace.json</a> (open in <a href="https://ui.perfetto.dev">ui.perfetto.dev</a> or chrome://tracing)
 &middot; <a href="/analysis">analysis</a> &middot; <a href="/log">event log</a></p>
<p class="legend">
<span style="background:` + colorVM + `"></span>VM task
<span style="background:` + colorLambda + `"></span>Lambda task
<span style="background:` + colorFailed + `"></span>failed
<span style="border:2px solid ` + colorStraggler + `"></span>straggler
<span style="background:` + colorLifetime + `"></span>executor lifetime
</p>
`)
	b.Write(svg.Bytes())
	b.WriteString("\n<h2>analytics</h2>\n<pre>")
	b.WriteString(html.EscapeString(a.String()))
	b.WriteString("</pre>\n</body></html>\n")
	return b.Bytes()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func kindOrDash2(k string) string {
	if k == "" {
		return "-"
	}
	return k
}

func durLabel(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%dms", us/1_000)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
