package main

import (
	"bytes"
	"fmt"
	"html"
	"sort"

	"splitserve/internal/eventlog"
	"splitserve/internal/perfstat"
)

// Timeline geometry and palette. The page is server-rendered inline SVG —
// no JavaScript — so it works in any browser and in CI artifact previews.
const (
	svgWidth   = 1000
	rowHeight  = 22
	rowGap     = 4
	labelWidth = 230

	colorVM        = "#4c9a52" // green, matches the trace's thread_state_running
	colorLambda    = "#e08c3c" // orange, matches thread_state_iowait
	colorFailed    = "#c0392b"
	colorLifetime  = "#e8e8e8"
	colorStraggler = "#c0392b"
)

// renderHTML builds the minimal timeline page: one row per executor with
// its lifetime in grey and each task as a slice colored by backend;
// stragglers get a red outline. Below the chart, the analytics tables are
// embedded verbatim.
func renderHTML(a *eventlog.Analysis) []byte {
	endUS := a.EndUS
	if endUS <= 0 {
		endUS = 1
	}
	x := func(us int64) float64 {
		return float64(us) / float64(endUS) * svgWidth
	}

	// Tasks per (app, exec) row.
	type rowKey struct{ app, exec string }
	tasks := map[rowKey][]eventlog.TaskStat{}
	for _, s := range a.Stages {
		for _, t := range s.Tasks {
			k := rowKey{t.App, t.Exec}
			tasks[k] = append(tasks[k], t)
		}
	}

	var svg bytes.Buffer
	height := len(a.Executors)*(rowHeight+rowGap) + rowGap
	fmt.Fprintf(&svg, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`,
		labelWidth+svgWidth+10, height)
	for i, ex := range a.Executors {
		y := rowGap + i*(rowHeight+rowGap)
		label := ex.Exec
		if ex.App != "" {
			label = ex.App + " / " + ex.Exec
		}
		fmt.Fprintf(&svg, `<text x="%d" y="%d">%s</text>`,
			4, y+rowHeight-7, html.EscapeString(trunc(label, 34)))

		// Lifetime band.
		x0, x1 := x(ex.AddUS), x(ex.RemoveUS)
		if x1 <= x0 {
			x1 = x0 + 1
		}
		fmt.Fprintf(&svg, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
			float64(labelWidth)+x0, y, x1-x0, rowHeight, colorLifetime)

		// Task slices.
		for _, t := range tasks[rowKey{ex.App, ex.Exec}] {
			tx := x(t.StartUS)
			tw := x(t.StartUS+t.DurUS) - tx
			if tw < 1 {
				tw = 1
			}
			fill := colorVM
			if t.Kind == "lambda" {
				fill = colorLambda
			}
			if t.Failed {
				fill = colorFailed
			}
			stroke := ""
			if t.Straggler {
				stroke = fmt.Sprintf(` stroke="%s" stroke-width="2"`, colorStraggler)
			}
			fmt.Fprintf(&svg,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"%s><title>%s</title></rect>`,
				float64(labelWidth)+tx, y+2, tw, rowHeight-4, fill, stroke,
				html.EscapeString(fmt.Sprintf("stage %d task %d on %s (%s): %s",
					t.Stage, t.Task, t.Exec, kindOrDash2(t.Kind), durLabel(t.DurUS))))
		}
	}
	fmt.Fprint(&svg, `</svg>`)

	var b bytes.Buffer
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>splitserve-history</title>
<style>
body { font-family: monospace; margin: 1.5em; }
pre  { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.legend span { display: inline-block; width: 12px; height: 12px; margin: 0 4px 0 12px; vertical-align: middle; }
</style></head><body>
<h1>splitserve-history</h1>
<p><a href="/trace">trace.json</a> (open in <a href="https://ui.perfetto.dev">ui.perfetto.dev</a> or chrome://tracing)
 &middot; <a href="/analysis">analysis</a> &middot; <a href="/log">event log</a> &middot; <a href="/perf">self-profiling</a></p>
<p class="legend">
<span style="background:` + colorVM + `"></span>VM task
<span style="background:` + colorLambda + `"></span>Lambda task
<span style="background:` + colorFailed + `"></span>failed
<span style="border:2px solid ` + colorStraggler + `"></span>straggler
<span style="background:` + colorLifetime + `"></span>executor lifetime
</p>
`)
	b.Write(svg.Bytes())
	b.WriteString("\n<h2>analytics</h2>\n<pre>")
	b.WriteString(html.EscapeString(a.String()))
	b.WriteString("</pre>\n</body></html>\n")
	return b.Bytes()
}

// renderPerfHTML builds the /perf page from a perfstat snapshot: headline
// throughput numbers, the clock/heap counters, the occupancy split as a
// stacked bar, and the raw JSON for copy-paste — wall-clock data, clearly
// labelled as outside the deterministic replay guarantee.
func renderPerfHTML(s *perfstat.Snapshot) []byte {
	var b bytes.Buffer
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>splitserve-history · self-profiling</title>
<style>
body { font-family: monospace; margin: 1.5em; }
pre  { background: #f6f6f6; padding: 1em; overflow-x: auto; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 3px 10px; text-align: right; }
th { background: #f0f0f0; }
td:first-child, th:first-child { text-align: left; }
.note { color: #777; }
</style></head><body>
<h1>self-profiling</h1>
<p><a href="/">timeline</a> &middot; <a href="/analysis">analysis</a> &middot; <a href="/log">event log</a></p>
<p class="note">Host-side wall-clock measurements ("deterministic": false) — the cost of computing
the simulation, not part of it. Same-seed reports and event logs are unaffected by collection.</p>
`)
	if s == nil {
		b.WriteString(`<p>No self-profiling data. Run with <code>-perf</code> for an inline run,
or point <code>-perfin</code> at a snapshot saved by any command's <code>-perf FILE</code>.</p>
</body></html>
`)
		return b.Bytes()
	}

	fmt.Fprintf(&b, `<h2>throughput</h2>
<table>
<tr><th>metric</th><th>value</th></tr>
<tr><td>wall time</td><td>%.3fs</td></tr>
<tr><td>events fired</td><td>%d</td></tr>
<tr><td>events/sec</td><td>%.0f</td></tr>
<tr><td>allocs/event</td><td>%.1f</td></tr>
<tr><td>bytes/event</td><td>%.0f</td></tr>
<tr><td>workload yields</td><td>%d</td></tr>
</table>
`, s.WallSeconds, s.EventsFired, s.EventsPerSec, s.AllocsPerEvent, s.BytesPerEvent, s.Yields)

	fmt.Fprintf(&b, `<h2>event queue</h2>
<table>
<tr><th>counter</th><th>value</th></tr>
<tr><td>queue high water</td><td>%d</td></tr>
<tr><td>timers cancelled</td><td>%d</td></tr>
<tr><td>ghost entries live</td><td>%d</td></tr>
<tr><td>compactions</td><td>%d</td></tr>
</table>
`, s.Clock.HeapHighWater, s.Clock.Cancelled, s.Clock.GhostsLive, s.Clock.Compactions)

	fmt.Fprintf(&b, `<h2>wall-clock latencies (µs)</h2>
<table>
<tr><th>path</th><th>count</th><th>p50</th><th>p99</th><th>max</th></tr>
<tr><td>clock step</td><td>%d</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>
<tr><td>goroutine handoff</td><td>%d</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>
</table>
`, s.StepWall.Count, s.StepWall.P50US, s.StepWall.P99US, s.StepWall.MaxUS,
		s.HandoffWall.Count, s.HandoffWall.P50US, s.HandoffWall.P99US, s.HandoffWall.MaxUS)

	// Occupancy as a stacked bar: step / handoff / other.
	occ := s.Occupancy
	fmt.Fprintf(&b, `<h2>clock-loop occupancy</h2>
<svg width="600" height="28">
<rect x="0" y="0" width="%.1f" height="28" fill="%s"><title>step %.1f%%</title></rect>
<rect x="%.1f" y="0" width="%.1f" height="28" fill="%s"><title>handoff %.1f%%</title></rect>
<rect x="%.1f" y="0" width="%.1f" height="28" fill="%s"><title>other %.1f%%</title></rect>
</svg>
<p class="legend">
<span style="display:inline-block;width:12px;height:12px;background:%s"></span> step %.1f%%
<span style="display:inline-block;width:12px;height:12px;background:%s;margin-left:12px"></span> handoff %.1f%%
<span style="display:inline-block;width:12px;height:12px;background:%s;margin-left:12px"></span> other %.1f%%
</p>
`,
		600*occ.StepFraction, colorVM, 100*occ.StepFraction,
		600*occ.StepFraction, 600*occ.HandoffFraction, colorLambda, 100*occ.HandoffFraction,
		600*(occ.StepFraction+occ.HandoffFraction), 600*occ.OtherFraction, colorLifetime, 100*occ.OtherFraction,
		colorVM, 100*occ.StepFraction, colorLambda, 100*occ.HandoffFraction, colorLifetime, 100*occ.OtherFraction)

	if s.RunQueue.Samples > 0 {
		fmt.Fprintf(&b, `<h2>cluster run queue</h2>
<table>
<tr><th>samples</th><th>mean depth</th><th>max depth</th></tr>
<tr><td>%d</td><td>%.2f</td><td>%d</td></tr>
</table>
`, s.RunQueue.Samples, s.RunQueue.Mean, s.RunQueue.Max)
	}

	if len(s.EventTypes) > 0 {
		b.WriteString("<h2>events by subsystem</h2>\n<table>\n<tr><th>subsystem</th><th>type</th><th>count</th></tr>\n")
		subs := make([]string, 0, len(s.EventTypes))
		for sub := range s.EventTypes {
			subs = append(subs, sub)
		}
		sort.Strings(subs)
		for _, sub := range subs {
			types := make([]string, 0, len(s.EventTypes[sub]))
			for t := range s.EventTypes[sub] {
				types = append(types, t)
			}
			sort.Strings(types)
			for _, t := range types {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n",
					html.EscapeString(sub), html.EscapeString(t), s.EventTypes[sub][t])
			}
		}
		b.WriteString("</table>\n")
	}

	if raw, err := s.JSON(); err == nil {
		b.WriteString("<h2>raw snapshot</h2>\n<pre>")
		b.WriteString(html.EscapeString(string(raw)))
		b.WriteString("</pre>\n")
	}
	b.WriteString("</body></html>\n")
	return b.Bytes()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func kindOrDash2(k string) string {
	if k == "" {
		return "-"
	}
	return k
}

func durLabel(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%dms", us/1_000)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
