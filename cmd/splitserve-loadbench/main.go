// Command splitserve-loadbench measures the simulator's own hot paths —
// the cluster scheduler, the engine yield protocol, the simclock timer
// wheel — by pushing streams of tiny jobs through the real machinery and
// writing a stable-schema BENCH_<label>.json trajectory point:
//
//	splitserve-loadbench                          # 100/1k/10k jobs -> BENCH_dev.json
//	splitserve-loadbench -label baseline          # -> BENCH_baseline.json
//	splitserve-loadbench -jobs 100,1000 -out -    # small run to stdout
//	splitserve-loadbench -shards 1,4 -tenants 8   # sharded control-plane points
//	splitserve-loadbench -compare OLD NEW         # diff two files, exit 1 past -threshold
//
// The measurements are host wall-clock data ("deterministic": false);
// the simulated runs themselves stay seed-deterministic. See
// OBSERVABILITY.md ("Layer 3: self-profiling") for the schema and the
// regression-gate workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"splitserve/internal/cliutil"
	"splitserve/internal/loadbench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jobsSpec   = flag.String("jobs", "100,1000,10000", "comma-separated job counts to measure")
		label      = flag.String("label", "dev", "trajectory label; default output is BENCH_<label>.json")
		out        = flag.String("out", "", "output path (- = stdout; default BENCH_<label>.json)")
		seed       = flag.Uint64("seed", 1, "simulation seed (the runs are deterministic; the measurements are not)")
		compare    = flag.Bool("compare", false, "compare two BENCH files: splitserve-loadbench -compare OLD NEW")
		threshold  = flag.Float64("threshold", 0.10, "relative change past which -compare exits nonzero (0.10 = 10% worse)")
		quiet      = flag.Bool("quiet", false, "suppress per-point progress on stderr")
		shardsSpec = flag.String("shards", "", "comma-separated shard counts: measure the sharded control plane at each (empty = classic single-scheduler points)")
		tenants    = flag.Int("tenants", 8, "synthetic tenant count for -shards points (t00, t01, ... round-robin)")
		commit     = flag.String("commit", cliutil.CommitFromEnv(), cliutil.CommitUsage)
	)
	perf := &cliutil.PerfFlags{}
	flag.StringVar(&perf.CPUProfile, "cpuprofile", "", cliutil.CPUProfileUsage)
	flag.StringVar(&perf.MemProfile, "memprofile", "", cliutil.MemProfileUsage)
	flag.Parse()

	if *compare {
		return runCompare(flag.Args(), *threshold)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "splitserve-loadbench: unexpected arguments %q (did you mean -compare OLD NEW?)\n", flag.Args())
		return 2
	}

	var counts []int
	for _, f := range strings.Split(*jobsSpec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "splitserve-loadbench: bad job count %q in -jobs\n", f)
			return 2
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench: -jobs is empty")
		return 2
	}
	var shardCounts []int
	for _, f := range strings.Split(*shardsSpec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "splitserve-loadbench: bad shard count %q in -shards\n", f)
			return 2
		}
		shardCounts = append(shardCounts, n)
	}
	if len(shardCounts) > 0 && *tenants < 1 {
		fmt.Fprintf(os.Stderr, "splitserve-loadbench: bad -tenants %d (want >= 1)\n", *tenants)
		return 2
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}

	if _, err := perf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
		return 2
	}
	defer perf.Stop()

	file := &loadbench.File{
		Schema:    loadbench.SchemaV1,
		Label:     *label,
		Commit:    *commit,
		GoVersion: runtime.Version(),
		Seed:      *seed,
	}
	for _, n := range counts {
		if len(shardCounts) == 0 {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "splitserve-loadbench: measuring %d jobs...\n", n)
			}
			p, err := loadbench.RunPoint(n, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
				return 1
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "  %d jobs in %.1fs: %.1f jobs/sec, %.0f events/sec, %.1f allocs/event\n",
					n, p.WallSeconds, p.JobsPerSec, p.EventsPerSec, p.AllocsPerEvent)
			}
			file.Points = append(file.Points, p)
			continue
		}
		for _, sh := range shardCounts {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "splitserve-loadbench: measuring %d jobs at %d shard(s), %d tenants...\n", n, sh, *tenants)
			}
			p, err := loadbench.RunShardPoint(n, sh, *tenants, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
				return 1
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "  %d jobs x%d shards in %.1fs: %.1f jobs/sec, %.0f events/sec, %.1f allocs/event\n",
					n, sh, p.WallSeconds, p.JobsPerSec, p.EventsPerSec, p.AllocsPerEvent)
			}
			file.Points = append(file.Points, p)
		}
	}
	if err := perf.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
		return 1
	}
	buf, err := file.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
		return 1
	}
	if path == "-" {
		os.Stdout.Write(buf)
		return 0
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
		return 1
	}
	fmt.Printf("wrote %s: %d points, label %q\n", path, len(file.Points), file.Label)
	return 0
}

// runCompare diffs OLD NEW and exits 1 when any metric regressed past the
// threshold — the gate later perf PRs run against the committed baseline.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "splitserve-loadbench: -compare needs exactly two files: OLD NEW")
		return 2
	}
	files := make([]*loadbench.File, 2)
	for i, path := range args {
		buf, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-loadbench:", err)
			return 2
		}
		if files[i], err = loadbench.Parse(buf); err != nil {
			fmt.Fprintf(os.Stderr, "splitserve-loadbench: %s: %v\n", path, err)
			return 2
		}
	}
	res := loadbench.Compare(files[0], files[1], threshold)
	fmt.Printf("comparing %q (old) vs %q (new):\n", files[0].Label, files[1].Label)
	fmt.Print(res)
	if res.Regressed {
		return 1
	}
	return 0
}
