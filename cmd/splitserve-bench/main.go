// Command splitserve-bench regenerates every table and figure of the
// paper's evaluation (Section 5) as text output:
//
//	splitserve-bench -fig 1    # Lambda-vs-VM cost curve
//	splitserve-bench -fig 2    # diurnal forecast + provisioning policies
//	splitserve-bench -fig 4a   # PageRank profiling, all-Lambda
//	splitserve-bench -fig 4b   # PageRank profiling, all-VM
//	splitserve-bench -fig 5    # TPC-DS Q5/Q16/Q94/Q95 under all scenarios
//	splitserve-bench -fig 6    # PageRank-850k under all scenarios
//	splitserve-bench -fig 7    # execution timelines incl. segue
//	splitserve-bench -fig 8    # K-means with trial error bars
//	splitserve-bench -fig 9    # SparkPi
//	splitserve-bench -fig all  # everything
//	splitserve-bench -summary  # the paper's headline claims, re-measured
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"splitserve/internal/autoscale"
	"splitserve/internal/cliutil"
	"splitserve/internal/eventlog"
	"splitserve/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1,2,4a,4b,5,6,7,8,9,all")
		summary = flag.Bool("summary", false, "print the paper's headline claims, re-measured")
		daysim  = flag.Bool("daysim", false, "run the day-long inter-job provisioning comparison (Section 4.1)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		trials  = flag.Int("trials", 15, "trials for figure 8's error bars")
		report  = flag.String("report", "", "append each run's telemetry report to result figures: json | prom")
		evLog   = flag.String("eventlog", "", cliutil.EventLogUsage+" (collected from result-bearing figures 5, 6, 7, 9)")
		trace   = flag.String("trace", "", cliutil.TraceUsage+" (collected from result-bearing figures 5, 6, 7, 9)")
	)
	perf := cliutil.RegisterPerfFlags(nil)
	flag.Parse()
	if err := cliutil.ValidateReport(*report); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
		return 2
	}
	prof, err := perf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
		return 2
	}
	defer perf.Stop()
	// Figures build their scenarios deep inside experiments; the
	// package-level hook routes the collector to every run.
	experiments.SetProfiler(prof)
	writePerf := func() int {
		if err := perf.WriteSnapshot(prof); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
			return 1
		}
		return 0
	}

	if *daysim {
		fmt.Println("== Day-long inter-job comparison (Section 4.1): one workday of 16-core jobs ==")
		for _, r := range autoscale.CompareDayStrategies(*seed) {
			fmt.Println(r)
		}
		return writePerf()
	}

	if *summary {
		if err := printSummary(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
			return 1
		}
		return writePerf()
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"1", "2", "4a", "4b", "5", "6", "7", "8", "9"}
	}
	var events []eventlog.Event
	for _, f := range figs {
		if err := printFigure(f, *seed, *trials, *report, &events); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
			return 1
		}
	}
	if err := cliutil.WriteEventLog(*evLog, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
		return 1
	}
	if err := cliutil.WriteTrace(*trace, events); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-bench:", err)
		return 1
	}
	return writePerf()
}

// collectEvents appends each run's event stream to *sink; distinct app IDs
// keep the runs on separate trace tracks.
func collectEvents(sink *[]eventlog.Event, res []*experiments.Result) {
	for _, r := range res {
		*sink = append(*sink, r.Events.Events()...)
	}
}

func printFigure(fig string, seed uint64, trials int, report string, events *[]eventlog.Event) error {
	start := time.Now()
	switch fig {
	case "1":
		fmt.Println("== Figure 1: cost of one vCPU, m4.large vs 1536 MB Lambda ==")
		fmt.Printf("%10s %14s %14s\n", "duration", "vm vCPU $", "lambda $")
		for _, p := range experiments.Figure1(5*time.Second, 3*time.Minute) {
			fmt.Printf("%10s %14.6f %14.6f\n", p.Duration, p.VMvCPUUSD, p.LambdaUSD)
		}

	case "2":
		f := experiments.Figure2()
		fmt.Println("== Figure 2: diurnal demand forecast and provisioning policies ==")
		s := f.Series
		fmt.Printf("%6s %8s %8s %8s\n", "hour", "m(t)", "σ(t)", "w(t)")
		for i := 0; i < s.Len(); i += 12 { // hourly samples
			fmt.Printf("%6.1f %8.1f %8.1f %8.1f\n",
				float64(i)*s.Step.Hours(), s.Mean[i], s.Sigma[i], s.Actual[i])
		}
		for _, p := range f.Policies {
			fmt.Println(p)
		}

	case "4a", "4b":
		lambda := fig == "4a"
		label := "all-Lambda executors (4a)"
		if !lambda {
			label = "all-VM executors (4b)"
		}
		pts, err := experiments.Figure4(lambda, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatProfile("Figure 4: PageRank profiling, "+label, pts))

	case "5":
		res, err := experiments.Figure5(seed)
		if err != nil {
			return err
		}
		collectEvents(events, res)
		fmt.Print(experiments.FormatResultsByWorkload("Figure 5", res, "Spark 32 VM"))
		if imp, err := experiments.Speedup(res, "Spark 8/32 autoscale", "SS 8 VM / 24 La"); err == nil {
			fmt.Printf("hybrid vs VM autoscaling: %.1f%% less execution time (paper: 55.2%%)\n", imp*100)
		}
		if err := printReports(res, report); err != nil {
			return err
		}

	case "6":
		res, err := experiments.Figure6(seed)
		if err != nil {
			return err
		}
		collectEvents(events, res)
		fmt.Print(experiments.FormatResults("Figure 6: PageRank 850k pages", res, "Spark 16 VM"))
		if imp, err := experiments.Speedup(res, "Spark 3/16 autoscale", "SS 3 VM / 13 La"); err == nil {
			fmt.Printf("hybrid vs VM autoscaling: %.1f%% less execution time (paper: ~32%%)\n", imp*100)
		}
		if imp, err := experiments.Speedup(res, "Spark 3/16 autoscale", "SS 3 VM / 13 La Segue"); err == nil {
			fmt.Printf("segue  vs VM autoscaling: %.1f%% less execution time (paper: ~24%%)\n", imp*100)
		}
		if err := printReports(res, report); err != nil {
			return err
		}

	case "7":
		res, err := experiments.Figure7(seed)
		if err != nil {
			return err
		}
		collectEvents(events, res)
		fmt.Println("== Figure 7: PageRank execution timelines ==")
		for _, r := range res {
			fmt.Printf("--- %s (execution time %v)\n", r.Scenario, r.ExecTime.Round(100*time.Millisecond))
			fmt.Print(r.Log.RenderTimeline(100))
		}
		if err := printReports(res, report); err != nil {
			return err
		}

	case "8":
		stats, err := experiments.Figure8(seed, trials)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTrials(
			fmt.Sprintf("Figure 8: K-means 3M points, R=16, r=4 (%d trials)", trials), stats))

	case "9":
		res, err := experiments.Figure9(seed)
		if err != nil {
			return err
		}
		collectEvents(events, res)
		fmt.Print(experiments.FormatResults("Figure 9: SparkPi 1e10 darts", res, "Spark 64 VM"))
		if err := printReports(res, report); err != nil {
			return err
		}

	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(10*time.Millisecond))
	return nil
}

// printReports dumps each run's telemetry report in the requested format
// ("" = off), labelled by scenario.
func printReports(res []*experiments.Result, format string) error {
	if format == "" {
		return nil
	}
	for _, r := range res {
		fmt.Printf("--- telemetry report: %s / %s ---\n", r.Workload, r.Scenario)
		switch format {
		case "json":
			buf, err := r.Telem.Report().JSON()
			if err != nil {
				return err
			}
			os.Stdout.Write(buf)
			fmt.Println()
		case "prom":
			if err := r.Telem.WritePrometheus(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// printSummary re-measures the paper's abstract-level claims.
func printSummary(seed uint64) error {
	fmt.Println("== SplitServe headline claims, re-measured ==")
	res5, err := experiments.Figure5(seed)
	if err != nil {
		return err
	}
	imp5, err := experiments.Speedup(res5, "Spark 8/32 autoscale", "SS 8 VM / 24 La")
	if err != nil {
		return err
	}
	fmt.Printf("small/modest shuffling (TPC-DS): SplitServe hybrid takes %.1f%% less time than VM autoscaling (paper: up to 55%%)\n", imp5*100)

	res6, err := experiments.Figure6(seed)
	if err != nil {
		return err
	}
	imp6, err := experiments.Speedup(res6, "Spark 3/16 autoscale", "SS 3 VM / 13 La")
	if err != nil {
		return err
	}
	fmt.Printf("large shuffling (PageRank): SplitServe hybrid takes %.1f%% less time than VM autoscaling (paper: up to 31%%)\n", imp6*100)
	return nil
}
