// Command splitserve-sim runs one {workload, scenario} combination and
// dumps the result with its execution timeline — the tool to poke at
// SplitServe's behaviour interactively:
//
//	splitserve-sim -workload pagerank -scenario hybrid-segue -r 16 -small 3 -segue-at 45s
//	splitserve-sim -workload tpcds-q16 -scenario qubole -r 32
//	splitserve-sim -workload kmeans -scenario spark-small -r 16 -small 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"splitserve"
	"splitserve/internal/cliutil"
)

// workloadNames is the accepted -workload vocabulary, kept in sync with
// buildWorkload.
var workloadNames = []string{
	"kmeans", "pagerank", "sparkpi", "tpcds-q5", "tpcds-q16", "tpcds-q94", "tpcds-q95",
}

func scenarioNames() []string {
	names := make([]string, 0, len(scenarioByName))
	for n := range scenarioByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var scenarioByName = map[string]splitserve.ScenarioKind{
	"spark-small":  splitserve.ScenarioSparkSmall,
	"spark-full":   splitserve.ScenarioSparkFull,
	"autoscale":    splitserve.ScenarioSparkAutoscale,
	"qubole":       splitserve.ScenarioQubole,
	"ss-vm":        splitserve.ScenarioSSFullVM,
	"ss-lambda":    splitserve.ScenarioSSLambda,
	"hybrid":       splitserve.ScenarioHybrid,
	"hybrid-segue": splitserve.ScenarioHybridSegue,
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload = flag.String("workload", "pagerank", "pagerank | kmeans | sparkpi | tpcds-q5 | tpcds-q16 | tpcds-q94 | tpcds-q95")
		scenario = flag.String("scenario", "hybrid", "spark-small | spark-full | autoscale | qubole | ss-vm | ss-lambda | hybrid | hybrid-segue")
		r        = flag.Int("r", 0, "required cores R (0 = workload default)")
		small    = flag.Int("small", 0, "free VM cores r (0 = R/4)")
		segueAt  = flag.Duration("segue-at", 45*time.Second, "when segue capacity appears")
		lambdaTO = flag.Duration("lambda-timeout", 0, "spark.lambda.executor.timeout (0 = default)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		width    = flag.Int("width", 100, "timeline width")
		report   = flag.String("report", "", "emit only the telemetry report: json | prom")
		eventLog = flag.String("eventlog", "", cliutil.EventLogUsage)
		trace    = flag.String("trace", "", cliutil.TraceUsage)
		attribF  = flag.String("attrib", "", cliutil.AttribUsage)
	)
	perf := cliutil.RegisterPerfFlags(nil)
	flag.Parse()

	kind, ok := scenarioByName[*scenario]
	if !ok {
		fmt.Fprintf(os.Stderr, "splitserve-sim: unknown scenario %q (accepted: %s)\n",
			*scenario, strings.Join(scenarioNames(), ", "))
		return 2
	}
	if err := cliutil.ValidateReport(*report); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 2
	}
	w, err := buildWorkload(*workload, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 2
	}
	perf.Label = *scenario + "/" + *workload
	prof, err := perf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 2
	}
	defer perf.Stop()

	opts := []splitserve.Option{
		splitserve.WithSeed(*seed),
		splitserve.WithSegueAt(*segueAt),
	}
	if prof != nil {
		opts = append(opts, splitserve.WithSelfProfile(prof))
	}
	if *lambdaTO > 0 {
		opts = append(opts, splitserve.WithLambdaTimeout(*lambdaTO))
	}
	cores := w.DefaultParallelism()
	if *r > 0 {
		cores = *r
	}
	sm := cores / 4
	if *small > 0 {
		sm = *small
	}
	opts = append(opts, splitserve.WithCores(cores, sm))

	res, err := splitserve.Run(kind, w, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 1
	}
	if err := cliutil.WriteEventLog(*eventLog, res.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 1
	}
	if err := cliutil.WriteTrace(*trace, res.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 1
	}
	if err := cliutil.WriteAttrib(*attribF, res.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 1
	}
	if err := perf.WriteSnapshot(prof); err != nil {
		fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
		return 1
	}
	switch *report {
	case "json":
		buf, err := res.ReportJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
			return 1
		}
		os.Stdout.Write(buf)
		fmt.Println()
		return 0
	case "prom":
		if err := res.ReportPrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "splitserve-sim:", err)
			return 1
		}
		return 0
	}
	fmt.Println(res)
	fmt.Println("answer:", res.Answer)
	fmt.Printf("work distribution: VM %d tasks / %v busy, Lambda %d tasks / %v busy\n",
		res.VMTasks, res.VMBusy.Round(time.Millisecond),
		res.LambdaTasks, res.LambdaBusy.Round(time.Millisecond))
	for kindName, usd := range res.CostByKind {
		fmt.Printf("cost[%s] = $%.6f\n", kindName, usd)
	}
	fmt.Print(res.Timeline(*width))
	return 0
}

func buildWorkload(name string, seed uint64) (splitserve.Workload, error) {
	switch {
	case name == "pagerank":
		return splitserve.PageRank(splitserve.PageRankOptions{Seed: seed}), nil
	case name == "kmeans":
		return splitserve.KMeans(splitserve.KMeansOptions{Seed: seed}), nil
	case name == "sparkpi":
		return splitserve.SparkPi(splitserve.SparkPiOptions{Seed: seed}), nil
	case strings.HasPrefix(name, "tpcds-"):
		return splitserve.TPCDSQuery(strings.TrimPrefix(name, "tpcds-")), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (accepted: %s)",
			name, strings.Join(workloadNames, ", "))
	}
}
