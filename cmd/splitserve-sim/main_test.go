package main

import (
	"sort"
	"strings"
	"testing"

	"splitserve"
)

func TestScenarioByNameCoversAllKinds(t *testing.T) {
	seen := map[splitserve.ScenarioKind]bool{}
	for name, kind := range scenarioByName {
		if name == "" {
			t.Fatal("empty scenario name")
		}
		if seen[kind] {
			t.Fatalf("kind %d mapped twice", kind)
		}
		seen[kind] = true
	}
	if len(seen) != 8 {
		t.Fatalf("scenario map covers %d kinds, want 8", len(seen))
	}
}

func TestBuildWorkload(t *testing.T) {
	for _, name := range workloadNames {
		w, err := buildWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name() == "" || w.DefaultParallelism() <= 0 {
			t.Fatalf("%s: degenerate workload", name)
		}
		if strings.HasPrefix(name, "tpcds-") && !strings.Contains(w.Name(), strings.TrimPrefix(name, "tpcds-")) {
			t.Fatalf("%s built %s", name, w.Name())
		}
	}
	if _, err := buildWorkload("nope", 1); err == nil || !strings.Contains(err.Error(), "accepted:") {
		t.Fatalf("unknown workload should list accepted names, got %v", err)
	}
}

func TestScenarioNamesSortedAndComplete(t *testing.T) {
	names := scenarioNames()
	if len(names) != len(scenarioByName) {
		t.Fatalf("scenarioNames covers %d of %d", len(names), len(scenarioByName))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenarioNames not sorted: %v", names)
	}
}
