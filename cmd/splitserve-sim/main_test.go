package main

import (
	"strings"
	"testing"

	"splitserve"
)

func TestScenarioByNameCoversAllKinds(t *testing.T) {
	seen := map[splitserve.ScenarioKind]bool{}
	for name, kind := range scenarioByName {
		if name == "" {
			t.Fatal("empty scenario name")
		}
		if seen[kind] {
			t.Fatalf("kind %d mapped twice", kind)
		}
		seen[kind] = true
	}
	if len(seen) != 8 {
		t.Fatalf("scenario map covers %d kinds, want 8", len(seen))
	}
}

func TestBuildWorkload(t *testing.T) {
	for _, name := range []string{"pagerank", "kmeans", "sparkpi", "tpcds-q5", "tpcds-q16", "tpcds-q94", "tpcds-q95"} {
		w, err := buildWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name() == "" || w.DefaultParallelism() <= 0 {
			t.Fatalf("%s: degenerate workload", name)
		}
		if strings.HasPrefix(name, "tpcds-") && !strings.Contains(w.Name(), strings.TrimPrefix(name, "tpcds-")) {
			t.Fatalf("%s built %s", name, w.Name())
		}
	}
	if _, err := buildWorkload("nope", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
