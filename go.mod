module splitserve

go 1.22
