package splitserve

import (
	"strings"
	"testing"
	"time"
)

func smallPageRank() Workload {
	return PageRank(PageRankOptions{Pages: 20_000, Partitions: 8, Iterations: 2})
}

func TestRunHybrid(t *testing.T) {
	res, err := Run(ScenarioHybrid, smallPageRank(), WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.VMExecutors != 2 || res.LambdaExecutors != 6 {
		t.Fatalf("executor mix = %d/%d, want 2/6", res.VMExecutors, res.LambdaExecutors)
	}
	if res.ExecTime <= 0 || res.CostUSD <= 0 {
		t.Fatalf("degenerate result: %v", res)
	}
	if !strings.Contains(res.Answer, "ranked") {
		t.Fatalf("answer = %q", res.Answer)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunAllScenarioKinds(t *testing.T) {
	for _, kind := range []ScenarioKind{
		ScenarioSparkSmall, ScenarioSparkFull, ScenarioSparkAutoscale,
		ScenarioQubole, ScenarioSSFullVM, ScenarioSSLambda,
		ScenarioHybrid, ScenarioHybridSegue,
	} {
		res, err := Run(kind, smallPageRank(), WithCores(8, 2), WithSegueAt(10*time.Second))
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if res.ExecTime <= 0 {
			t.Fatalf("kind %d: zero exec time", kind)
		}
	}
}

func TestUnknownScenarioKind(t *testing.T) {
	if _, err := Run(ScenarioKind(99), smallPageRank()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		res, err := Run(ScenarioSSLambda, smallPageRank(), WithCores(8, 0), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestFullVMFasterThanSmall(t *testing.T) {
	full, err := Run(ScenarioSparkFull, smallPageRank(), WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(ScenarioSparkSmall, smallPageRank(), WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if small.ExecTime <= full.ExecTime {
		t.Fatalf("r-core run (%v) not slower than R-core run (%v)", small.ExecTime, full.ExecTime)
	}
}

func TestHybridBeatsAutoscale(t *testing.T) {
	// The paper's headline: hybrid launching beats VM autoscaling for
	// latency-critical jobs.
	w := PageRank(PageRankOptions{Pages: 100_000, Partitions: 16, Iterations: 3})
	hybrid, err := Run(ScenarioHybrid, w, WithCores(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	autoscale, err := Run(ScenarioSparkAutoscale, w, WithCores(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.ExecTime >= autoscale.ExecTime {
		t.Fatalf("hybrid (%v) not faster than autoscale (%v)", hybrid.ExecTime, autoscale.ExecTime)
	}
}

func TestTimelineRenders(t *testing.T) {
	res, err := Run(ScenarioHybrid, smallPageRank(), WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline(60)
	if !strings.Contains(tl, "lambda") || !strings.Contains(tl, "vm") {
		t.Fatalf("timeline missing executor kinds:\n%s", tl)
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, w := range []Workload{
		PageRank(PageRankOptions{}),
		KMeans(KMeansOptions{}),
		SparkPi(SparkPiOptions{}),
		TPCDSQuery("q16"),
		TPCDSQueryAt("q94", 2, 32),
	} {
		if w.Name() == "" || w.DefaultParallelism() <= 0 {
			t.Fatalf("bad workload %T", w)
		}
	}
}

func TestKMeansViaAPI(t *testing.T) {
	w := KMeans(KMeansOptions{Points: 20_000, Dims: 8, K: 5, Partitions: 8})
	res, err := Run(ScenarioSSFullVM, w, WithCores(8, 8), WithWorkerType(M44XLarge))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Answer, "converged") {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestSparkPiViaAPI(t *testing.T) {
	w := SparkPi(SparkPiOptions{Darts: 1e9, Partitions: 16})
	res, err := Run(ScenarioSSLambda, w, WithCores(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Answer, "3.14") {
		t.Fatalf("answer = %q", res.Answer)
	}
	if res.LambdaExecutors != 16 {
		t.Fatalf("lambda executors = %d", res.LambdaExecutors)
	}
}

func TestOptionsApply(t *testing.T) {
	res, err := Run(ScenarioSSFullVM, smallPageRank(),
		WithCores(4, 4),
		WithSeed(3),
		WithWorkerType(M410XLarge),
		WithMasterType(M4XLarge),
		WithExecutorMemoryMB(2048),
		WithLambdaTimeout(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMExecutors != 4 {
		t.Fatalf("executors = %d, want 4", res.VMExecutors)
	}
}

func TestWorkDistributionReported(t *testing.T) {
	res, err := Run(ScenarioHybrid, smallPageRank(), WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.VMTasks == 0 || res.LambdaTasks == 0 {
		t.Fatalf("work distribution missing: vm=%d lambda=%d", res.VMTasks, res.LambdaTasks)
	}
	if res.VMBusy <= 0 || res.LambdaBusy <= 0 {
		t.Fatalf("busy time missing: vm=%v lambda=%v", res.VMBusy, res.LambdaBusy)
	}
}
