// pagerank-segue demonstrates the segueing facility on the paper's
// shuffle-heavy PageRank workload (Figures 6 and 7): the job starts on
// 3 VM cores plus 13 Lambdas; at 45 s, replacement VM cores become
// available and SplitServe gracefully drains the Lambdas — no task
// failures, no lineage rollback — finishing the job on VMs.
//
//	go run ./examples/pagerank-segue
package main

import (
	"fmt"
	"log"
	"time"

	"splitserve"
)

func main() {
	w := splitserve.PageRank(splitserve.PageRankOptions{
		Pages:      850_000,
		Partitions: 16,
		Iterations: 2,
	})

	noSegue, err := splitserve.Run(splitserve.ScenarioHybrid, w,
		splitserve.WithCores(16, 3),
		splitserve.WithWorkerType(splitserve.M44XLarge),
	)
	if err != nil {
		log.Fatal(err)
	}

	segue, err := splitserve.Run(splitserve.ScenarioHybridSegue, w,
		splitserve.WithCores(16, 3),
		splitserve.WithWorkerType(splitserve.M44XLarge),
		splitserve.WithSegueAt(45*time.Second),
		splitserve.WithLambdaTimeout(40*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PageRank 850k pages, 3 VM cores free, 13 Lambdas bridging:")
	fmt.Printf("  hybrid, no segue: %v, $%.4f\n", noSegue.ExecTime, noSegue.CostUSD)
	fmt.Printf("  hybrid + segue:   %v, $%.4f (Lambdas drained once VM cores arrived)\n",
		segue.ExecTime, segue.CostUSD)
	fmt.Println()
	fmt.Println("Timeline with segue ('|' marks segue commencement; the Lambda rows go")
	fmt.Println("idle after it while fresh VM executors take over):")
	fmt.Print(segue.Timeline(100))
}
