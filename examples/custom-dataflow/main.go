// custom-dataflow shows how to build your own workload with the typed
// dataset API — a clickstream sessionisation job (scan → keyed join →
// per-user aggregation) — and run it under SplitServe's scenarios the same
// way the paper's benchmarks run.
//
//	go run ./examples/custom-dataflow
package main

import (
	"fmt"
	"log"
	"time"

	"splitserve"
	"splitserve/dataset"
	"splitserve/internal/simrand"
)

type click struct {
	User int
	Page int32
	Ms   int32 // dwell time
}

type profile struct {
	User int
	Tier int8
}

func main() {
	const (
		users      = 40_000
		clicks     = 800_000
		partitions = 16
	)

	build := func(c *dataset.Context) dataset.Dataset[dataset.Pair[string, float64]] {
		clicksDS := dataset.Source(c, "clicks", partitions, func(p int) []click {
			rng := simrand.New(uint64(p) + 1)
			out := make([]click, clicks/partitions)
			for i := range out {
				out[i] = click{
					User: rng.Intn(users),
					Page: int32(rng.Intn(5000)),
					Ms:   int32(rng.Intn(30000)),
				}
			}
			return out
		}, 2600, 24)

		profiles := dataset.Source(c, "profiles", partitions, func(p int) []profile {
			var out []profile
			for u := p; u < users; u += partitions {
				out = append(out, profile{User: u, Tier: int8(u % 3)})
			}
			return out
		}, 800, 12)

		// Dwell time per user.
		dwell := dataset.Map(clicksDS, "dwell", func(cl click) dataset.Pair[int, int64] {
			return dataset.Pair[int, int64]{K: cl.User, V: int64(cl.Ms)}
		}, 160, 20)
		perUser := dataset.ReduceByKey(dwell, "sum-dwell", partitions,
			func(a, b int64) int64 { return a + b }, 120, 20)

		// Join with the profile table, then aggregate dwell per tier.
		keyedProfiles := dataset.Map(profiles, "key-profiles", func(pr profile) dataset.Pair[int, int8] {
			return dataset.Pair[int, int8]{K: pr.User, V: pr.Tier}
		}, 80, 12)
		perTier := dataset.Join(perUser, keyedProfiles, "join-tier", partitions,
			func(user int, totalMs int64, tier int8) dataset.Pair[string, float64] {
				return dataset.Pair[string, float64]{
					K: fmt.Sprintf("tier-%d", tier),
					V: float64(totalMs) / 1000,
				}
			}, 200, 24)
		return dataset.ReduceByKey(perTier, "tier-dwell", 3,
			func(a, b float64) float64 { return a + b }, 4, 24)
	}

	w := dataset.AsWorkload("clickstream-sessions", partitions, 2*time.Minute, build,
		func(rows []dataset.Pair[string, float64]) string {
			out := ""
			for _, r := range rows {
				out += fmt.Sprintf("[%s %.0f dwell-seconds]", r.K, r.V)
			}
			return out
		})

	fmt.Println("Custom clickstream job, 16 cores needed, 4 free on VMs:")
	for _, sc := range []struct {
		kind  splitserve.ScenarioKind
		label string
	}{
		{splitserve.ScenarioSparkSmall, "vanilla on 4 cores"},
		{splitserve.ScenarioHybrid, "SplitServe hybrid"},
		{splitserve.ScenarioSSLambda, "SplitServe all-Lambda"},
	} {
		res, err := splitserve.Run(sc.kind, w, splitserve.WithCores(16, 4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %10v  $%.4f\n", sc.label, res.ExecTime, res.CostUSD)
		if sc.kind == splitserve.ScenarioHybrid {
			fmt.Println("    per-tier dwell:", res.Answer)
		}
	}
}
