// Quickstart: run one PageRank job under SplitServe's hybrid launching
// facility and print what you would care about as a tenant — execution
// time, marginal dollar cost, and the executor mix.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"splitserve"
)

func main() {
	// A latency-critical PageRank job wants 16 cores, but only 3 cores are
	// free on the cluster's VMs right now. SplitServe bridges the other 13
	// with Lambdas instead of waiting ~2 minutes for new VMs.
	w := splitserve.PageRank(splitserve.PageRankOptions{
		Pages:      850_000,
		Partitions: 16,
		Iterations: 3,
	})

	hybrid, err := splitserve.Run(splitserve.ScenarioHybrid, w,
		splitserve.WithCores(16, 3))
	if err != nil {
		log.Fatal(err)
	}

	// The two baselines the paper compares against.
	underProvisioned, err := splitserve.Run(splitserve.ScenarioSparkSmall, w,
		splitserve.WithCores(16, 3))
	if err != nil {
		log.Fatal(err)
	}
	autoscale, err := splitserve.Run(splitserve.ScenarioSparkAutoscale, w,
		splitserve.WithCores(16, 3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PageRank, 16 cores required, 3 free on VMs:")
	fmt.Printf("  vanilla Spark on 3 cores:   %v  ($%.4f)\n", underProvisioned.ExecTime, underProvisioned.CostUSD)
	fmt.Printf("  vanilla + VM autoscaling:   %v  ($%.4f)\n", autoscale.ExecTime, autoscale.CostUSD)
	fmt.Printf("  SplitServe hybrid:          %v  ($%.4f)  <- %d VM + %d Lambda executors\n",
		hybrid.ExecTime, hybrid.CostUSD, hybrid.VMExecutors, hybrid.LambdaExecutors)
	fmt.Println()
	fmt.Println("computed result:", hybrid.Answer)
	fmt.Println()
	fmt.Println("per-executor timeline ('#' = task running):")
	fmt.Print(hybrid.Timeline(90))
}
