// kmeans-allocation explores the paper's K-means findings (Figure 8):
// under-provisioning is catastrophic (cache thrash makes 4 cores ~10x
// slower, not 4x), VM autoscaling recovers only partially because early
// waves already ran on overloaded executors, and for this resource-
// constrained, compute-heavy workload an all-Lambda SplitServe run is the
// better buy — the paper's point that the best substrate mix is
// workload-dependent.
//
//	go run ./examples/kmeans-allocation
package main

import (
	"fmt"
	"log"

	"splitserve"
)

func main() {
	w := splitserve.KMeans(splitserve.KMeansOptions{
		Points:     3_000_000,
		Dims:       20,
		K:          10,
		Partitions: 16,
	})

	type row struct {
		kind  splitserve.ScenarioKind
		label string
	}
	rows := []row{
		{splitserve.ScenarioSparkFull, "Spark, 16 VM cores (reference)"},
		{splitserve.ScenarioSparkSmall, "Spark, only 4 VM cores"},
		{splitserve.ScenarioSparkAutoscale, "Spark, 4 cores + VM autoscaling"},
		{splitserve.ScenarioSSLambda, "SplitServe, 16 Lambdas"},
		{splitserve.ScenarioHybrid, "SplitServe, 4 VM + 12 Lambdas"},
	}

	fmt.Println("K-means clustering, 16 cores desired, 4 free (1 GB executors):")
	var ref, small float64
	for _, r := range rows {
		res, err := splitserve.Run(r.kind, w,
			splitserve.WithCores(16, 4),
			splitserve.WithWorkerType(splitserve.M44XLarge),
			// spark.executor.memory=1g: ample for 16-way caching of the
			// points dataset, thrashing when 4 executors hold it all.
			splitserve.WithExecutorMemoryMB(1024),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-36s %10v  $%.4f   %s\n", r.label, res.ExecTime, res.CostUSD, res.Answer)
		switch r.kind {
		case splitserve.ScenarioSparkFull:
			ref = res.ExecTime.Seconds()
		case splitserve.ScenarioSparkSmall:
			small = res.ExecTime.Seconds()
		}
	}
	fmt.Println()
	fmt.Printf("Under-provisioning penalty: %.1fx — superlinear, because the cached\n", small/ref)
	fmt.Println("dataset no longer fits 4 executors and every iteration recomputes it.")
}
