// tpcds-burst replays the paper's motivating scenario on the TPC-DS
// decision-support queries (Figure 5): a burst of latency-critical
// analytics queries arrives when only 8 of the required 32 cores are
// free. It compares every remedy the paper evaluates — running small,
// autoscaling VMs, going all-in on Lambdas with S3 shuffle (Qubole), and
// SplitServe's hybrid — for each of Q5, Q16, Q94 and Q95.
//
//	go run ./examples/tpcds-burst
package main

import (
	"fmt"
	"log"

	"splitserve"
)

func main() {
	type row struct {
		kind splitserve.ScenarioKind
		name string
	}
	scenarios := []row{
		{splitserve.ScenarioSparkSmall, "run on the 8 free cores"},
		{splitserve.ScenarioSparkAutoscale, "autoscale VMs (2 min boot)"},
		{splitserve.ScenarioQubole, "all-Lambda, S3 shuffle"},
		{splitserve.ScenarioHybrid, "SplitServe: 8 VM + 24 Lambda"},
		{splitserve.ScenarioSparkFull, "(reference: 32 cores free)"},
	}

	for _, query := range []string{"q16", "q94", "q95"} {
		w := splitserve.TPCDSQuery(query)
		fmt.Printf("TPC-DS %s at scale factor 8, R=32 cores, r=8 free:\n", query)
		for _, sc := range scenarios {
			res, err := splitserve.Run(sc.kind, w,
				splitserve.WithCores(32, 8),
				splitserve.WithWorkerType(splitserve.M410XLarge),
				splitserve.WithMasterType(splitserve.M410XLarge),
			)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-30s %10v  $%.4f\n", sc.name, res.ExecTime, res.CostUSD)
		}
		fmt.Println()
	}
	fmt.Println("The hybrid keeps the burst close to fully-provisioned latency without")
	fmt.Println("paying for 32 always-on cores — the paper's Figure 5 story.")
}
