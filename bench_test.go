package splitserve

// Benchmarks regenerating every figure of the paper's evaluation, plus
// ablations over SplitServe's design knobs. Wall-clock nanoseconds measure
// the simulator; the custom metrics carry the reproduced results:
//
//	sim-seconds/x — the scenario's simulated execution time
//	usd/x         — the scenario's marginal dollar cost
//
// Run with: go test -bench=. -benchmem
//
// With BENCH_JSON=FILE set, the custom metrics are additionally written
// to FILE as JSON after the run (see benchjson_test.go and `make bench`).

import (
	"fmt"
	"testing"
	"time"

	"splitserve/internal/autoscale"
	"splitserve/internal/cloud"
	"splitserve/internal/experiments"
	"splitserve/internal/workloads/pagerank"
)

// report attaches a scenario result to a benchmark.
func report(b *testing.B, label string, secs, usd float64) {
	recordMetric(b, secs, "sim-seconds/"+label)
	recordMetric(b, usd, "usd/"+label)
}

// BenchmarkFig1CostCurve regenerates the Lambda-vs-VM cost comparison and
// reports the crossover instant.
func BenchmarkFig1CostCurve(b *testing.B) {
	var cross float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure1(100*time.Millisecond, 2*time.Minute)
		cross = 0
		for _, p := range pts {
			if p.LambdaUSD > p.VMvCPUUSD {
				cross = p.Duration.Seconds()
				break
			}
		}
	}
	recordMetric(b, cross, "crossover-seconds")
}

// BenchmarkFig2Forecast regenerates the diurnal provisioning analysis.
func BenchmarkFig2Forecast(b *testing.B) {
	var f *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		f = experiments.Figure2()
	}
	recordMetric(b, float64(len(f.Series.Shortfalls(2))), "shortfall-samples-k2")
	recordMetric(b, f.Policies[0].TotalUSD, "usd-policy-k0")
	recordMetric(b, f.Policies[2].TotalUSD, "usd-policy-k2")
}

// fig4Sweep is a reduced Figure 4 sweep (one dataset size) per iteration.
func fig4Sweep(b *testing.B, lambda bool) {
	var minTime, minPar float64
	for i := 0; i < b.N; i++ {
		minTime, minPar = 0, 0
		for par := 1; par <= 64; par *= 2 {
			cfg := pagerank.DefaultConfig()
			cfg.Pages = 100_000
			cfg.Partitions = par
			cfg.Seed = 1
			kind := experiments.SSFullVM
			if lambda {
				kind = experiments.SSLambda
			}
			workerType, _ := cloud.SmallestFor(par)
			res, err := experiments.Run(experiments.Scenario{
				Kind: kind, R: par, SmallR: par,
				WorkerVMType: workerType, Seed: 1,
			}, pagerank.New(cfg))
			if err != nil {
				b.Fatal(err)
			}
			if minTime == 0 || res.ExecTime.Seconds() < minTime {
				minTime = res.ExecTime.Seconds()
				minPar = float64(par)
			}
		}
	}
	recordMetric(b, minPar, "optimal-parallelism")
	recordMetric(b, minTime, "optimal-sim-seconds")
}

// BenchmarkFig4ProfileLambda regenerates Figure 4a (all-Lambda U-curve).
func BenchmarkFig4ProfileLambda(b *testing.B) { fig4Sweep(b, true) }

// BenchmarkFig4ProfileVM regenerates Figure 4b (all-VM U-curve).
func BenchmarkFig4ProfileVM(b *testing.B) { fig4Sweep(b, false) }

// BenchmarkFig5TPCDS regenerates Figure 5 and reports the paper's headline
// comparisons averaged over Q5/Q16/Q94/Q95.
func BenchmarkFig5TPCDS(b *testing.B) {
	var res []*experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure5(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := experiments.AverageByScenario(res)
	report(b, "spark32", avg["Spark 32 VM"].Seconds(), 0)
	report(b, "qubole", avg["Qubole 32 La"].Seconds(), 0)
	report(b, "hybrid", avg["SS 8 VM / 24 La"].Seconds(), 0)
	if imp, err := experiments.Speedup(res, "Spark 8/32 autoscale", "SS 8 VM / 24 La"); err == nil {
		recordMetric(b, imp*100, "pct-better-than-autoscale")
	}
}

// BenchmarkFig6PageRank regenerates Figure 6.
func BenchmarkFig6PageRank(b *testing.B) {
	var res []*experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure6(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		switch r.Scenario {
		case "Spark 16 VM":
			report(b, "spark16", r.ExecTime.Seconds(), r.CostUSD)
		case "SS 3 VM / 13 La":
			report(b, "hybrid", r.ExecTime.Seconds(), r.CostUSD)
		case "SS 3 VM / 13 La Segue":
			report(b, "segue", r.ExecTime.Seconds(), r.CostUSD)
		}
	}
}

// BenchmarkFig7Timeline regenerates the three execution timelines.
func BenchmarkFig7Timeline(b *testing.B) {
	var res []*experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The segue run must actually have drained lambdas.
	segues := res[2].Log.ByKind("segue_commence")
	recordMetric(b, float64(len(segues)), "segue-events")
	report(b, "segue-run", res[2].ExecTime.Seconds(), res[2].CostUSD)
}

// BenchmarkFig8KMeans regenerates Figure 8 with 3 trials per scenario
// (15 in the paper; `splitserve-bench -fig 8` uses the full count).
func BenchmarkFig8KMeans(b *testing.B) {
	var stats []experiments.TrialStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = experiments.Figure8(1, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range stats {
		switch s.Scenario {
		case "Spark 4 VM":
			report(b, "spark4", s.MeanTime.Seconds(), s.MeanCost)
		case "Spark 16 VM":
			report(b, "spark16", s.MeanTime.Seconds(), s.MeanCost)
		case "SS 16 La":
			report(b, "ss16la", s.MeanTime.Seconds(), s.MeanCost)
		}
	}
}

// BenchmarkFig9SparkPi regenerates Figure 9.
func BenchmarkFig9SparkPi(b *testing.B) {
	var res []*experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure9(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		switch r.Scenario {
		case "Spark 64 VM":
			report(b, "spark64", r.ExecTime.Seconds(), r.CostUSD)
		case "Spark 4 VM":
			report(b, "spark4", r.ExecTime.Seconds(), r.CostUSD)
		case "Qubole 64 La":
			report(b, "qubole", r.ExecTime.Seconds(), r.CostUSD)
		}
	}
}

// ablationWorkload is the mid-size PageRank used by the design-knob
// ablations.
func ablationWorkload() *pagerank.Workload {
	cfg := pagerank.DefaultConfig()
	cfg.Pages = 200_000
	cfg.Partitions = 16
	cfg.Iterations = 3
	return pagerank.New(cfg)
}

// BenchmarkAblationShuffleBackend compares the three shuffle substrates on
// the same workload: executor-local disk (vanilla), HDFS (SplitServe's
// state-transfer facility), and S3 (Qubole) — the design choice Section 4.3
// motivates.
func BenchmarkAblationShuffleBackend(b *testing.B) {
	kinds := []struct {
		kind  experiments.Kind
		label string
	}{
		{experiments.SparkFullVM, "local"},
		{experiments.SSFullVM, "hdfs"},
		{experiments.QuboleLambda, "s3"},
	}
	var out map[string]*experiments.Result
	for i := 0; i < b.N; i++ {
		out = make(map[string]*experiments.Result)
		for _, k := range kinds {
			res, err := experiments.Run(experiments.Scenario{
				Kind: k.kind, R: 16, SmallR: 16,
				WorkerVMType: cloud.M44XLarge, Seed: 1,
			}, ablationWorkload())
			if err != nil {
				b.Fatal(err)
			}
			out[k.label] = res
		}
	}
	for label, res := range out {
		report(b, label, res.ExecTime.Seconds(), res.CostUSD)
	}
}

// BenchmarkAblationSegueThreshold sweeps spark.lambda.executor.timeout —
// the paper's configurable knob — showing the cost/latency trade-off of
// segueing earlier or later.
func BenchmarkAblationSegueThreshold(b *testing.B) {
	thresholds := []time.Duration{10 * time.Second, 40 * time.Second, 90 * time.Second}
	long := pagerank.DefaultConfig()
	long.Pages = 850_000
	long.Partitions = 16
	long.Iterations = 3
	long.WorkScale = 12
	long.SampleFactor = 4
	var out []*experiments.Result
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, th := range thresholds {
			res, err := experiments.Run(experiments.Scenario{
				Kind: experiments.SSHybridSegue, R: 16, SmallR: 3,
				WorkerVMType:  cloud.M44XLarge,
				SegueAt:       20 * time.Second,
				LambdaTimeout: th,
				Seed:          1,
			}, pagerank.New(long))
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
	}
	for i, th := range thresholds {
		report(b, "timeout-"+th.String(), out[i].ExecTime.Seconds(), out[i].CostUSD)
	}
}

// BenchmarkAblationLambdaMemory sweeps the Lambda memory size: memory buys
// CPU share and network bandwidth (1 vCPU per 1536 MB) but raises the
// GB-second price — the sizing decision Section 3 discusses.
func BenchmarkAblationLambdaMemory(b *testing.B) {
	sizes := []int{1024, 1536, 3008}
	var out []*experiments.Result
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, mem := range sizes {
			res, err := experiments.Run(experiments.Scenario{
				Kind: experiments.SSLambda, R: 16,
				LambdaMemoryMB: mem,
				Seed:           1,
			}, ablationWorkload())
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
	}
	for i, mem := range sizes {
		report(b, fmt.Sprintf("mem-%dMB", mem), out[i].ExecTime.Seconds(), out[i].CostUSD)
	}
}

// BenchmarkExtensionBurScale compares SplitServe's Lambdas against
// BurScale-style burstable standbys (paper Section 2's complementary
// remedy) with healthy and depleted CPU-credit balances.
func BenchmarkExtensionBurScale(b *testing.B) {
	var rows []experiments.BurScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionBurScale(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := []string{"lambda-bridge", "t3-full", "t3-depleted"}
	for i, r := range rows {
		report(b, labels[i], r.ExecTime.Seconds(), r.CostUSD)
	}
}

// BenchmarkExtensionDaySim prices a full day of the inter-job layer
// (Section 4.1) under the provisioning strategies.
func BenchmarkExtensionDaySim(b *testing.B) {
	var rows []autoscale.DayResult
	for i := 0; i < b.N; i++ {
		rows = autoscale.CompareDayStrategies(1)
	}
	for _, r := range rows {
		recordMetric(b, r.TotalUSD, "usd-day/"+r.Label())
		recordMetric(b, float64(r.SLOViolations), "violations/"+r.Label())
	}
}
