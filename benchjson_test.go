package splitserve

// The BENCH_JSON recorder: when the environment variable is set to a
// path, every custom metric the benchmarks report (via recordMetric) is
// also collected and written there as one JSON document after the run —
// `make bench` uses it so figure results are machine-readable, not just
// terminal scroll.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// benchJSONSchema identifies the bench-metrics.json layout.
const benchJSONSchema = "splitserve-benchjson/v1"

var benchMetrics = struct {
	sync.Mutex
	m map[string]map[string]float64 // benchmark name -> unit -> value
}{m: map[string]map[string]float64{}}

// recordMetric is the benchmarks' ReportMetric wrapper: identical output
// in the -bench text, plus capture for the BENCH_JSON recorder.
func recordMetric(b *testing.B, value float64, unit string) {
	b.ReportMetric(value, unit)
	benchMetrics.Lock()
	defer benchMetrics.Unlock()
	mm := benchMetrics.m[b.Name()]
	if mm == nil {
		mm = map[string]float64{}
		benchMetrics.m[b.Name()] = mm
	}
	mm[unit] = value
}

type benchJSONFile struct {
	Schema     string                        `json:"schema"`
	GoVersion  string                        `json:"go_version"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_JSON:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func writeBenchJSON(path string) error {
	benchMetrics.Lock()
	defer benchMetrics.Unlock()
	if len(benchMetrics.m) == 0 {
		return fmt.Errorf("no benchmark metrics recorded (run with -bench)")
	}
	buf, err := json.MarshalIndent(benchJSONFile{
		Schema:     benchJSONSchema,
		GoVersion:  runtime.Version(),
		Benchmarks: benchMetrics.m,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// TestBenchJSONRecorder exercises the capture path without -bench: the
// recorder must keep per-benchmark metrics separate and render to the
// stable schema.
func TestBenchJSONRecorder(t *testing.T) {
	benchMetrics.Lock()
	saved := benchMetrics.m
	benchMetrics.m = map[string]map[string]float64{}
	benchMetrics.Unlock()
	defer func() {
		benchMetrics.Lock()
		benchMetrics.m = saved
		benchMetrics.Unlock()
	}()

	testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
		recordMetric(b, 42, "sim-seconds/x")
		recordMetric(b, 0.5, "usd/x")
	})

	benchMetrics.Lock()
	defer benchMetrics.Unlock()
	var names []string
	for name := range benchMetrics.m {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) != 1 {
		t.Fatalf("recorded benchmarks = %v, want 1", names)
	}
	got := benchMetrics.m[names[0]]
	if got["sim-seconds/x"] != 42 || got["usd/x"] != 0.5 {
		t.Fatalf("metrics = %v", got)
	}
}
