package dataset_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"splitserve"
	"splitserve/dataset"
)

// wordCount is the canonical typed dataflow used across these tests.
func wordCount(parts int) func(*dataset.Context) dataset.Dataset[dataset.Pair[string, int]] {
	corpus := []string{"the", "quick", "brown", "fox", "the", "lazy", "dog", "the"}
	return func(c *dataset.Context) dataset.Dataset[dataset.Pair[string, int]] {
		words := dataset.Source(c, "words", parts, func(p int) []string {
			var out []string
			for i, w := range corpus {
				if i%parts == p {
					out = append(out, w)
				}
			}
			return out
		}, 10, 8)
		pairs := dataset.Map(words, "pair", func(w string) dataset.Pair[string, int] {
			return dataset.Pair[string, int]{K: w, V: 1}
		}, 2, 16)
		return dataset.ReduceByKey(pairs, "count", parts,
			func(a, b int) int { return a + b }, 2, 16)
	}
}

func runTyped[T any](t *testing.T, build func(*dataset.Context) dataset.Dataset[T], digest func([]T) string) *splitserve.Result {
	t.Helper()
	w := dataset.AsWorkload("typed-test", 4, time.Minute, build, digest)
	res, err := splitserve.Run(splitserve.ScenarioSSFullVM, w, splitserve.WithCores(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWordCount(t *testing.T) {
	res := runTyped(t, wordCount(4), func(rows []dataset.Pair[string, int]) string {
		sort.Slice(rows, func(i, j int) bool { return rows[i].K < rows[j].K })
		var parts []string
		for _, r := range rows {
			parts = append(parts, fmt.Sprintf("%s=%d", r.K, r.V))
		}
		return strings.Join(parts, " ")
	})
	want := "brown=1 dog=1 fox=1 lazy=1 quick=1 the=3"
	if res.Answer != want {
		t.Fatalf("answer = %q, want %q", res.Answer, want)
	}
}

func TestFilterAndFlatMap(t *testing.T) {
	res := runTyped(t, func(c *dataset.Context) dataset.Dataset[int] {
		nums := dataset.Source(c, "nums", 4, func(p int) []int {
			return []int{p * 10, p*10 + 1, p*10 + 2}
		}, 1, 8)
		evens := dataset.Filter(nums, "evens", func(n int) bool { return n%2 == 0 }, 1)
		return dataset.FlatMap(evens, "dup", func(n int) []int { return []int{n, n} }, 1, 8)
	}, nil)
	if !strings.Contains(res.Answer, "16 rows") { // 8 evens duplicated
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestGroupByKey(t *testing.T) {
	res := runTyped(t, func(c *dataset.Context) dataset.Dataset[dataset.Pair[int, []string]] {
		src := dataset.Source(c, "kv", 2, func(p int) []dataset.Pair[int, string] {
			return []dataset.Pair[int, string]{
				{K: p, V: "a"}, {K: p, V: "b"}, {K: 9, V: "x"},
			}
		}, 1, 16)
		return dataset.GroupByKey(src, "grp", 2, 1, 24)
	}, func(rows []dataset.Pair[int, []string]) string {
		total := 0
		for _, r := range rows {
			total += len(r.V)
		}
		return fmt.Sprintf("%d keys %d values", len(rows), total)
	})
	if res.Answer != "3 keys 6 values" {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestJoin(t *testing.T) {
	res := runTyped(t, func(c *dataset.Context) dataset.Dataset[string] {
		users := dataset.Source(c, "users", 2, func(p int) []dataset.Pair[int, string] {
			return []dataset.Pair[int, string]{{K: p, V: fmt.Sprintf("user%d", p)}}
		}, 1, 16)
		orders := dataset.Source(c, "orders", 2, func(p int) []dataset.Pair[int, int] {
			return []dataset.Pair[int, int]{{K: p, V: 100 + p}}
		}, 1, 16)
		return dataset.Join(users, orders, "join", 2,
			func(k int, name string, amt int) string {
				return fmt.Sprintf("%s:%d", name, amt)
			}, 1, 24)
	}, func(rows []string) string {
		sort.Strings(rows)
		return strings.Join(rows, ",")
	})
	if res.Answer != "user0:100,user1:101" {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestMapPartitionsAndCache(t *testing.T) {
	build := func(c *dataset.Context) dataset.Dataset[int] {
		src := dataset.Source(c, "nums", 4, func(p int) []int {
			out := make([]int, 100)
			for i := range out {
				out[i] = i
			}
			return out
		}, 50, 8).Cache()
		return dataset.MapPartitions(src, "sum", func(_ int, in []int) []int {
			s := 0
			for _, v := range in {
				s += v
			}
			return []int{s}
		}, 1, 8)
	}
	res := runTyped(t, build, func(rows []int) string {
		total := 0
		for _, v := range rows {
			total += v
		}
		return fmt.Sprintf("sum=%d", total)
	})
	if res.Answer != fmt.Sprintf("sum=%d", 4*4950) {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestTypedWorkloadUnderHybridScenario(t *testing.T) {
	w := dataset.AsWorkload("typed-hybrid", 8, time.Minute, wordCount(8), nil)
	res, err := splitserve.Run(splitserve.ScenarioHybrid, w, splitserve.WithCores(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.LambdaExecutors == 0 {
		t.Fatal("typed workload did not run on lambdas")
	}
	if !strings.Contains(res.Answer, "rows") {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestAsWorkloadValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dataset.AsWorkload[int]("", 0, 0, nil, nil)
}

func TestPartitionsAccessor(t *testing.T) {
	c := dataset.NewContext()
	d := dataset.Source(c, "s", 7, func(int) []int { return nil }, 1, 8)
	if d.Partitions() != 7 {
		t.Fatalf("Partitions = %d", d.Partitions())
	}
	if d.RDD() == nil {
		t.Fatal("RDD accessor nil")
	}
}

func TestDistinctSampleCount(t *testing.T) {
	build := func(c *dataset.Context) dataset.Dataset[dataset.Pair[int, int]] {
		nums := dataset.Source(c, "nums", 4, func(p int) []int {
			out := make([]int, 1000)
			for i := range out {
				out[i] = i % 50 // heavy duplication
			}
			return out
		}, 1, 8)
		distinct := dataset.Distinct(nums, "distinct", 4, func(n int) int { return n }, 1)
		return dataset.CountByKey(distinct, "count", 2, func(n int) int { return n % 2 }, 1)
	}
	res := runTyped(t, build, func(rows []dataset.Pair[int, int]) string {
		total := 0
		for _, r := range rows {
			total += r.V
		}
		return fmt.Sprintf("%d distinct", total)
	})
	if res.Answer != "50 distinct" {
		t.Fatalf("answer = %q", res.Answer)
	}
}

func TestSampleTyped(t *testing.T) {
	build := func(c *dataset.Context) dataset.Dataset[int] {
		nums := dataset.Source(c, "nums", 2, func(p int) []int {
			out := make([]int, 5000)
			for i := range out {
				out[i] = p*5000 + i
			}
			return out
		}, 1, 8)
		return dataset.Sample(nums, "sample", 0.1, func(n int) int { return n }, 1)
	}
	res := runTyped(t, build, nil)
	if !strings.Contains(res.Answer, "rows") {
		t.Fatalf("answer = %q", res.Answer)
	}
	var n int
	fmt.Sscanf(res.Answer, "%d rows", &n)
	if n < 700 || n > 1300 {
		t.Fatalf("sample kept %d of 10000, want ~1000", n)
	}
}
