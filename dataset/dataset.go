// Package dataset is a type-safe, generics-based facade over the engine's
// untyped RDD layer — the ergonomic way to define custom dataflows and run
// them under any of the paper's scenarios:
//
//	type visit struct{ User string; Dur int }
//
//	w := dataset.AsWorkload("sessions", 16, time.Minute,
//	    func(c *dataset.Context) dataset.Dataset[dataset.Pair[string, int]] {
//	        visits := dataset.Source(c, "visits", 16, genVisits, 50, 24)
//	        pairs := dataset.Map(visits, "pair", func(v visit) dataset.Pair[string, int] {
//	            return dataset.Pair[string, int]{K: v.User, V: v.Dur}
//	        }, 5, 24)
//	        return dataset.ReduceByKey(pairs, "total", 16,
//	            func(a, b int) int { return a + b }, 5, 24)
//	    },
//	    func(rows []dataset.Pair[string, int]) string {
//	        return fmt.Sprintf("%d users", len(rows))
//	    })
//
//	res, _ := splitserve.Run(splitserve.ScenarioHybrid, w, splitserve.WithCores(16, 4))
//
// Costs follow the engine's convention: CPU work units per row processed
// and serialized bytes per row (see internal/spark/rdd).
package dataset

import (
	"fmt"
	"time"

	"splitserve/internal/spark/engine"
	"splitserve/internal/spark/rdd"
	"splitserve/internal/workloads"
)

// Key constrains shuffle keys to the engine's hashable, ordered key types.
type Key interface {
	~int | ~int32 | ~int64 | ~uint64 | ~string
}

// Pair is a keyed row.
type Pair[K Key, V any] struct {
	K K
	V V
}

// Context builds one logical plan.
type Context struct {
	inner *rdd.Context
}

// NewContext returns an empty plan-building context.
func NewContext() *Context { return &Context{inner: rdd.NewContext()} }

// Dataset is a typed view of a lineage-carrying dataset.
type Dataset[T any] struct {
	ctx *Context
	r   *rdd.RDD
}

// RDD unwraps the underlying untyped dataset (advanced use).
func (d Dataset[T]) RDD() *rdd.RDD { return d.r }

// Cache marks the dataset for executor-memory caching.
func (d Dataset[T]) Cache() Dataset[T] {
	d.r.Cache()
	return d
}

// Partitions returns the dataset's partition count.
func (d Dataset[T]) Partitions() int { return d.r.Parts }

// Source creates a generator-backed dataset: gen materialises one
// partition. costPerRow models producing/parsing a row; rowBytes its
// serialized size.
func Source[T any](c *Context, name string, parts int, gen func(part int) []T, costPerRow float64, rowBytes int) Dataset[T] {
	r := c.inner.Source(name, parts, func(p int) []rdd.Row {
		rows := gen(p)
		out := make([]rdd.Row, len(rows))
		for i, v := range rows {
			out[i] = v
		}
		return out
	}, costPerRow, rowBytes)
	return Dataset[T]{ctx: c, r: r}
}

// Map applies f to every row.
func Map[T, U any](d Dataset[T], name string, f func(T) U, costPerRow float64, rowBytes int) Dataset[U] {
	r := d.r.Map(name, func(row rdd.Row) rdd.Row { return f(row.(T)) }, costPerRow, rowBytes)
	return Dataset[U]{ctx: d.ctx, r: r}
}

// Filter keeps rows where pred holds.
func Filter[T any](d Dataset[T], name string, pred func(T) bool, costPerRow float64) Dataset[T] {
	r := d.r.Filter(name, func(row rdd.Row) bool { return pred(row.(T)) }, costPerRow)
	return Dataset[T]{ctx: d.ctx, r: r}
}

// FlatMap applies f to every row and concatenates the results.
func FlatMap[T, U any](d Dataset[T], name string, f func(T) []U, costPerRow float64, rowBytes int) Dataset[U] {
	r := d.r.FlatMap(name, func(row rdd.Row) []rdd.Row {
		us := f(row.(T))
		out := make([]rdd.Row, len(us))
		for i, u := range us {
			out[i] = u
		}
		return out
	}, costPerRow, rowBytes)
	return Dataset[U]{ctx: d.ctx, r: r}
}

// MapPartitions applies f to whole partitions.
func MapPartitions[T, U any](d Dataset[T], name string, f func(part int, in []T) []U, costPerRow float64, rowBytes int) Dataset[U] {
	r := d.r.MapPartitions(name, func(part int, in []rdd.Row) []rdd.Row {
		typed := make([]T, len(in))
		for i, row := range in {
			typed[i] = row.(T)
		}
		us := f(part, typed)
		out := make([]rdd.Row, len(us))
		for i, u := range us {
			out[i] = u
		}
		return out
	}, costPerRow, rowBytes)
	return Dataset[U]{ctx: d.ctx, r: r}
}

// ReduceByKey shuffles pairs by key and merges values with merge (with a
// map-side combiner, like Spark's reduceByKey).
func ReduceByKey[K Key, V any](d Dataset[Pair[K, V]], name string, parts int, merge func(a, b V) V, costPerRow float64, rowBytes int) Dataset[Pair[K, V]] {
	r := d.r.ReduceByKey(name, parts,
		func(row rdd.Row) rdd.Key { return row.(Pair[K, V]).K },
		func(a, b rdd.Row) rdd.Row {
			pa, pb := a.(Pair[K, V]), b.(Pair[K, V])
			return Pair[K, V]{K: pa.K, V: merge(pa.V, pb.V)}
		}, costPerRow, rowBytes)
	return Dataset[Pair[K, V]]{ctx: d.ctx, r: r}
}

// GroupByKey shuffles pairs by key and gathers each key's values (no
// combining — full data motion).
func GroupByKey[K Key, V any](d Dataset[Pair[K, V]], name string, parts int, costPerRow float64, rowBytes int) Dataset[Pair[K, []V]] {
	r := d.r.Exchange(name, parts,
		func(row rdd.Row) rdd.Key { return row.(Pair[K, V]).K },
		func(_ int, groups []rdd.Group) []rdd.Row {
			out := make([]rdd.Row, len(groups))
			for i, g := range groups {
				vals := make([]V, len(g.Rows))
				for j, row := range g.Rows {
					vals[j] = row.(Pair[K, V]).V
				}
				out[i] = Pair[K, []V]{K: g.Key.(K), V: vals}
			}
			return out
		}, costPerRow, rowBytes)
	return Dataset[Pair[K, []V]]{ctx: d.ctx, r: r}
}

// Join inner-joins two keyed datasets, emitting f(key, left, right) for
// every matching value pair.
func Join[K Key, L, R, O any](l Dataset[Pair[K, L]], r Dataset[Pair[K, R]], name string, parts int, f func(K, L, R) O, costPerRow float64, rowBytes int) Dataset[O] {
	out := l.r.Join(r.r, name, parts,
		func(row rdd.Row) rdd.Key { return row.(Pair[K, L]).K },
		func(row rdd.Row) rdd.Key { return row.(Pair[K, R]).K },
		func(a, b rdd.Row) rdd.Row {
			pa, pb := a.(Pair[K, L]), b.(Pair[K, R])
			return f(pa.K, pa.V, pb.V)
		}, costPerRow, rowBytes)
	return Dataset[O]{ctx: l.ctx, r: out}
}

// typedWorkload adapts a dataset-building function to workloads.Workload.
type typedWorkload[T any] struct {
	name        string
	parallelism int
	slo         time.Duration
	build       func(*Context) Dataset[T]
	digest      func([]T) string
}

// AsWorkload wraps a typed dataflow as a workload runnable under any
// splitserve scenario. build constructs the plan; digest summarises the
// collected result for the run report (nil = row count).
func AsWorkload[T any](name string, parallelism int, slo time.Duration, build func(*Context) Dataset[T], digest func([]T) string) workloads.Workload {
	if name == "" || parallelism <= 0 || build == nil {
		panic("dataset: invalid workload")
	}
	if digest == nil {
		digest = func(rows []T) string { return fmt.Sprintf("%d rows", len(rows)) }
	}
	return &typedWorkload[T]{
		name: name, parallelism: parallelism, slo: slo,
		build: build, digest: digest,
	}
}

// Name implements workloads.Workload.
func (w *typedWorkload[T]) Name() string { return w.name }

// DefaultParallelism implements workloads.Workload.
func (w *typedWorkload[T]) DefaultParallelism() int { return w.parallelism }

// SLO implements workloads.Workload.
func (w *typedWorkload[T]) SLO() time.Duration { return w.slo }

// Run implements workloads.Workload.
func (w *typedWorkload[T]) Run(c *engine.Cluster) (*workloads.Report, error) {
	return workloads.Timed(c, w.name, func() (string, int, error) {
		d := w.build(NewContext())
		job, err := c.RunJob(d.r, w.name)
		if err != nil {
			return "", 0, err
		}
		rows := job.Rows()
		typed := make([]T, len(rows))
		for i, row := range rows {
			v, ok := row.(T)
			if !ok {
				return "", 1, fmt.Errorf("dataset: result row %d is %T", i, row)
			}
			typed[i] = v
		}
		return w.digest(typed), 1, nil
	})
}

// Distinct returns the distinct rows of a keyed projection of d.
func Distinct[T any, K Key](d Dataset[T], name string, parts int, key func(T) K, costPerRow float64) Dataset[T] {
	r := d.r.Distinct(name, parts, func(row rdd.Row) rdd.Key { return key(row.(T)) }, costPerRow)
	return Dataset[T]{ctx: d.ctx, r: r}
}

// Sample keeps approximately frac of the rows, deterministically by key
// hash.
func Sample[T any, K Key](d Dataset[T], name string, frac float64, key func(T) K, costPerRow float64) Dataset[T] {
	r := d.r.Sample(name, frac, func(row rdd.Row) rdd.Key { return key(row.(T)) }, costPerRow)
	return Dataset[T]{ctx: d.ctx, r: r}
}

// CountByKey counts rows per key.
func CountByKey[T any, K Key](d Dataset[T], name string, parts int, key func(T) K, costPerRow float64) Dataset[Pair[K, int]] {
	keyed := Map(d, name+"-pair", func(v T) Pair[K, int] {
		return Pair[K, int]{K: key(v), V: 1}
	}, costPerRow/2, 16)
	return ReduceByKey(keyed, name, parts, func(a, b int) int { return a + b }, costPerRow/2, 16)
}
