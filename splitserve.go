// Package splitserve is the public API of the SplitServe reproduction — a
// discrete-event reimplementation of "SplitServe: Efficiently Splitting
// Apache Spark Jobs Across FaaS and IaaS" (Middleware 2020).
//
// The package lets a user run the paper's workloads (TPC-DS queries,
// PageRank, K-means, SparkPi — or custom dataflows built on the engine)
// under the paper's provisioning scenarios (vanilla Spark on r or R VM
// cores, VM autoscaling, Qubole-style all-Lambda with S3 shuffle, and
// SplitServe's hybrid VM+Lambda execution with optional segueing), and
// reports execution time, marginal cost, and the execution timeline.
//
// Quick start:
//
//	w := splitserve.PageRank(splitserve.PageRankOptions{Pages: 100_000})
//	res, err := splitserve.Run(splitserve.ScenarioHybrid, w,
//	    splitserve.WithCores(16, 3))
//	fmt.Println(res.ExecTime, res.CostUSD)
//
// Every run is a deterministic simulation: same seed, same result.
package splitserve

import (
	"fmt"
	"io"
	"time"

	"splitserve/internal/cloud"
	"splitserve/internal/eventlog"
	"splitserve/internal/experiments"
	"splitserve/internal/perfstat"
	"splitserve/internal/workloads"
	"splitserve/internal/workloads/kmeans"
	"splitserve/internal/workloads/pagerank"
	"splitserve/internal/workloads/sparkpi"
	"splitserve/internal/workloads/tpcds"
)

// Workload is a runnable benchmark program. The built-in constructors
// below cover the paper's four workloads; custom dataflows can implement
// the same interface against the engine packages.
type Workload = workloads.Workload

// ScenarioKind selects one of the paper's provisioning scenarios.
type ScenarioKind int

// Scenario kinds (Section 5.1 of the paper).
const (
	// ScenarioSparkSmall is "Spark r VM": under-provisioned vanilla Spark.
	ScenarioSparkSmall ScenarioKind = iota + 1
	// ScenarioSparkFull is "Spark R VM": adequately provisioned Spark.
	ScenarioSparkFull
	// ScenarioSparkAutoscale is "Spark r/R autoscale".
	ScenarioSparkAutoscale
	// ScenarioQubole is "Qubole R La": all-Lambda with S3 shuffle.
	ScenarioQubole
	// ScenarioSSFullVM is "SS R VM": SplitServe, all VM cores.
	ScenarioSSFullVM
	// ScenarioSSLambda is "SS R La": SplitServe all-Lambda, HDFS shuffle.
	ScenarioSSLambda
	// ScenarioHybrid is "SS r VM / Δ La": the hybrid launching facility.
	ScenarioHybrid
	// ScenarioHybridSegue adds the segueing facility.
	ScenarioHybridSegue
)

var kindMap = map[ScenarioKind]experiments.Kind{
	ScenarioSparkSmall:     experiments.SparkSmallVM,
	ScenarioSparkFull:      experiments.SparkFullVM,
	ScenarioSparkAutoscale: experiments.SparkAutoscale,
	ScenarioQubole:         experiments.QuboleLambda,
	ScenarioSSFullVM:       experiments.SSFullVM,
	ScenarioSSLambda:       experiments.SSLambda,
	ScenarioHybrid:         experiments.SSHybrid,
	ScenarioHybridSegue:    experiments.SSHybridSegue,
}

// Option customises a Run.
type Option func(*experiments.Scenario)

// WithCores sets the job's required cores R and the free VM cores r.
func WithCores(r int, small int) Option {
	return func(sc *experiments.Scenario) {
		sc.R = r
		sc.SmallR = small
	}
}

// WithSeed sets the simulation seed.
func WithSeed(seed uint64) Option {
	return func(sc *experiments.Scenario) { sc.Seed = seed }
}

// WithSegueAt pins when segue replacement capacity becomes available.
func WithSegueAt(d time.Duration) Option {
	return func(sc *experiments.Scenario) { sc.SegueAt = d }
}

// WithLambdaTimeout sets spark.lambda.executor.timeout.
func WithLambdaTimeout(d time.Duration) Option {
	return func(sc *experiments.Scenario) { sc.LambdaTimeout = d }
}

// WithSelfProfile attaches a perfstat collector: host-side (wall-clock)
// self-profiling of the simulator — events/sec, allocs per event, per-step
// wall percentiles. Purely observational; the simulated result, report and
// event log are byte-identical with it on or off. Obtain one with
// perfstat.New and read it with Snapshot after the run.
func WithSelfProfile(p *perfstat.Collector) Option {
	return func(sc *experiments.Scenario) { sc.Profiler = p }
}

// WithWorkerType selects the instance type hosting VM executors, e.g.
// splitserve.M44XLarge.
func WithWorkerType(t VMType) Option {
	return func(sc *experiments.Scenario) { sc.WorkerVMType = cloud.VMType(t) }
}

// WithMasterType selects the master (and colocated HDFS) instance type.
func WithMasterType(t VMType) Option {
	return func(sc *experiments.Scenario) { sc.MasterVMType = cloud.VMType(t) }
}

// WithExecutorMemoryMB fixes per-executor memory on VMs
// (spark.executor.memory).
func WithExecutorMemoryMB(mb int) Option {
	return func(sc *experiments.Scenario) { sc.ExecMemoryMB = mb }
}

// VMType names an EC2 instance type.
type VMType cloud.VMType

// The m4 family used throughout the paper.
var (
	M4Large    = VMType(cloud.M4Large)
	M4XLarge   = VMType(cloud.M4XLarge)
	M42XLarge  = VMType(cloud.M42XLarge)
	M44XLarge  = VMType(cloud.M44XLarge)
	M410XLarge = VMType(cloud.M410XLarge)
	M416XLarge = VMType(cloud.M416XLarge)
)

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario and Workload identify the run.
	Scenario string
	Workload string
	// ExecTime is the job's simulated execution time (submission to
	// completion, including driver startup).
	ExecTime time.Duration
	// CostUSD is the job's marginal cost (VM core share, procured VMs,
	// Lambda GB-seconds, S3 requests).
	CostUSD float64
	// CostByKind breaks the cost down ("vm", "lambda", "s3").
	CostByKind map[string]float64
	// Answer is the workload's computed (real) result digest.
	Answer string
	// VMExecutors and LambdaExecutors count the executor mix used.
	VMExecutors     int
	LambdaExecutors int
	// VMTasks/LambdaTasks and VMBusy/LambdaBusy split the executed work
	// by substrate (the paper's work-distribution analysis).
	VMTasks     int
	LambdaTasks int
	VMBusy      time.Duration
	LambdaBusy  time.Duration

	inner *experiments.Result
}

// Timeline renders the run's per-executor execution timeline (the paper's
// Figure 7 view) as ASCII, width columns wide.
func (r *Result) Timeline(width int) string {
	return r.inner.Log.RenderTimeline(width)
}

// ReportJSON returns the run's full telemetry report — counters, gauges,
// histograms, spans, and marks — as deterministic, indented JSON. Two runs
// with identical inputs produce byte-identical reports.
func (r *Result) ReportJSON() ([]byte, error) {
	return r.inner.Telem.Report().JSON()
}

// ReportPrometheus writes the run's metrics (no spans) in the Prometheus
// text exposition format.
func (r *Result) ReportPrometheus(w io.Writer) error {
	return r.inner.Telem.WritePrometheus(w)
}

// EventLogJSONL returns the run's structured event stream as JSONL (one
// event per line, byte-identical across same-seed runs). Replay it with
// cmd/splitserve-history.
func (r *Result) EventLogJSONL() ([]byte, error) {
	return r.inner.Events.JSONL()
}

// ChromeTrace renders the run's event stream as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev.
func (r *Result) ChromeTrace() ([]byte, error) {
	return eventlog.ChromeTrace(r.inner.Events.Events())
}

// Events returns the run's raw event stream in emission order, for
// programmatic analysis (see internal/eventlog.Analyze).
func (r *Result) Events() []eventlog.Event {
	return r.inner.Events.Events()
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s under %s: %v, $%.4f (%d VM / %d Lambda executors)",
		r.Workload, r.Scenario, r.ExecTime.Round(time.Millisecond),
		r.CostUSD, r.VMExecutors, r.LambdaExecutors)
}

// Run executes workload w under the given scenario kind. Defaults: R is
// the workload's preferred parallelism, r = R/4, paper-calibrated machine
// types, seed 1.
func Run(kind ScenarioKind, w Workload, opts ...Option) (*Result, error) {
	ik, ok := kindMap[kind]
	if !ok {
		return nil, fmt.Errorf("splitserve: unknown scenario kind %d", kind)
	}
	sc := experiments.Scenario{
		Kind:   ik,
		R:      w.DefaultParallelism(),
		SmallR: w.DefaultParallelism() / 4,
		Seed:   1,
	}
	if sc.SmallR < 1 {
		sc.SmallR = 1
	}
	for _, o := range opts {
		o(&sc)
	}
	res, err := experiments.Run(sc, w)
	if err != nil {
		return nil, err
	}
	return &Result{
		Scenario:        res.Scenario,
		Workload:        res.Workload,
		ExecTime:        res.ExecTime,
		CostUSD:         res.CostUSD,
		CostByKind:      res.ByKind,
		Answer:          res.Answer,
		VMExecutors:     res.VMExecs,
		LambdaExecutors: res.Lambdas,
		VMTasks:         res.VMWork.Tasks,
		LambdaTasks:     res.LambdaWork.Tasks,
		VMBusy:          res.VMWork.Busy,
		LambdaBusy:      res.LambdaWork.Busy,
		inner:           res,
	}, nil
}

// PageRankOptions configure the PageRank workload.
type PageRankOptions struct {
	// Pages (default 850,000, the paper's Figure 6 size).
	Pages int
	// Iterations (default 3) and Partitions (default 16).
	Iterations int
	Partitions int
	// Seed (default 1).
	Seed uint64
}

// PageRank builds the HiBench WebSearch workload.
func PageRank(o PageRankOptions) Workload {
	cfg := pagerank.DefaultConfig()
	if o.Pages > 0 {
		cfg.Pages = o.Pages
	}
	if o.Iterations > 0 {
		cfg.Iterations = o.Iterations
	}
	if o.Partitions > 0 {
		cfg.Partitions = o.Partitions
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return pagerank.New(cfg)
}

// KMeansOptions configure the K-means workload.
type KMeansOptions struct {
	// Points (default 3,000,000), Dims (20), K (10).
	Points int
	Dims   int
	K      int
	// Partitions (default 16), MaxIterations (5).
	Partitions    int
	MaxIterations int
	Seed          uint64
}

// KMeans builds the HiBench distributed K-means workload.
func KMeans(o KMeansOptions) Workload {
	cfg := kmeans.DefaultConfig()
	if o.Points > 0 {
		cfg.Points = o.Points
	}
	if o.Dims > 0 {
		cfg.Dims = o.Dims
	}
	if o.K > 0 {
		cfg.K = o.K
	}
	if o.Partitions > 0 {
		cfg.Partitions = o.Partitions
	}
	if o.MaxIterations > 0 {
		cfg.MaxIterations = o.MaxIterations
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return kmeans.New(cfg)
}

// SparkPiOptions configure the SparkPi workload.
type SparkPiOptions struct {
	// Darts (default 1e10) and Partitions (default 64).
	Darts      int64
	Partitions int
	Seed       uint64
}

// SparkPi builds the Monte-Carlo π workload.
func SparkPi(o SparkPiOptions) Workload {
	cfg := sparkpi.DefaultConfig()
	if o.Darts > 0 {
		cfg.Darts = o.Darts
	}
	if o.Partitions > 0 {
		cfg.Partitions = o.Partitions
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return sparkpi.New(cfg)
}

// TPCDSQuery builds one of the paper's four TPC-DS queries ("q5", "q16",
// "q94", "q95") at the paper's scale factor 8 with the calibrated
// configuration (the query's answers are really computed over synthetic
// TPC-DS-shaped tables).
func TPCDSQuery(id string) Workload {
	return experiments.NewTPCDSQuery(id)
}

// TPCDSQueryAt builds a TPC-DS query at an arbitrary scale factor and
// partition count (sampled generation; see DESIGN.md).
func TPCDSQueryAt(id string, sf, partitions int) Workload {
	return tpcds.NewQuery(id, sf, partitions).WithSample(4 * sf)
}
