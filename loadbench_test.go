package splitserve

// Load benchmarks for the simulator's own hot paths: streams of tiny jobs
// through the real cluster scheduler with perfstat attached, the Go-bench
// twin of `splitserve-loadbench`. Wall-clock ns/op measures one full
// stream; the custom metrics carry the BENCH trajectory columns
// (jobs/sec, events/sec, allocs/event, step p99).
//
// Run with: go test -bench=Load -benchtime=1x
// CI and `make loadbench` use the splitserve-loadbench command instead,
// which writes the stable-schema BENCH_<label>.json.

import (
	"testing"

	"splitserve/internal/loadbench"
)

func benchLoad(b *testing.B, jobs int) {
	var p loadbench.Point
	for i := 0; i < b.N; i++ {
		var err error
		p, err = loadbench.RunPoint(jobs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	recordMetric(b, p.JobsPerSec, "jobs/sec")
	recordMetric(b, p.EventsPerSec, "events/sec")
	recordMetric(b, p.AllocsPerEvent, "allocs/event")
	recordMetric(b, p.StepP99US, "step-p99-µs")
}

func BenchmarkLoad100(b *testing.B) { benchLoad(b, 100) }
func BenchmarkLoad1k(b *testing.B)  { benchLoad(b, 1_000) }
func BenchmarkLoad10k(b *testing.B) { benchLoad(b, 10_000) }
